//! Property: incremental frame decoding is byte-split-invariant.
//!
//! [`FrameDecoder`] (the reactor's per-connection read path) must produce
//! exactly the frames — and exactly the errors — that the blocking
//! [`read_frame`] produces over the same byte stream, no matter how the
//! bytes are partitioned across `feed` calls: whole-buffer, split at
//! every byte boundary, byte-at-a-time, or random uneven chunks. Error
//! classification must match too: an oversized length prefix is
//! `InvalidData`, EOF mid-frame is `UnexpectedEof` naming the part
//! ("length prefix" vs "payload") the stream died in.

use std::io::{self, Cursor};

use pdm_stream::proto::{read_frame, write_frame, FrameDecoder, MAX_FRAME};
use proptest::prelude::*;

/// What a decode run ended with, in comparable form.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    CleanEof,
    Error(io::ErrorKind, String),
}

fn outcome_of(e: &io::Error) -> Outcome {
    Outcome::Error(e.kind(), e.to_string())
}

/// Ground truth: drive the blocking reader over the whole byte stream.
fn oracle(bytes: &[u8]) -> (Vec<(u8, Vec<u8>)>, Outcome) {
    let mut r = Cursor::new(bytes);
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut r) {
            Ok(Some(f)) => frames.push(f),
            Ok(None) => return (frames, Outcome::CleanEof),
            Err(e) => return (frames, outcome_of(&e)),
        }
    }
}

/// Feed `bytes` to a fresh [`FrameDecoder`] in chunks whose sizes cycle
/// over `sizes`, draining complete frames after every feed — exactly the
/// reactor's read loop. EOF handling mirrors the reactor's `handle_eof`:
/// leftover buffered bytes are a truncation, not a clean close.
fn streamed(bytes: &[u8], sizes: &[usize]) -> (Vec<(u8, Vec<u8>)>, Outcome) {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut at = 0usize;
    let mut k = 0usize;
    while at < bytes.len() {
        let take = sizes[k % sizes.len()].max(1).min(bytes.len() - at);
        dec.feed(&bytes[at..at + take]);
        at += take;
        k += 1;
        loop {
            match dec.next_frame() {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => break,
                Err(e) => return (frames, outcome_of(&e)),
            }
        }
    }
    let end = if dec.mid_frame() {
        outcome_of(&dec.truncation_error())
    } else {
        Outcome::CleanEof
    };
    (frames, end)
}

/// Serialize frames, then mutilate the tail per `scenario`:
/// 0 = intact, 1 = truncate (peer died mid-write), 2 = append an
/// oversized-length header (corrupt prefix; must not allocate 64 MiB).
fn wire_bytes(frames: &[(u8, Vec<u8>)], scenario: u8, cut: u16, excess: u32) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (tag, payload) in frames {
        write_frame(&mut bytes, *tag, payload).unwrap();
    }
    match scenario {
        1 if !bytes.is_empty() => {
            let keep = cut as usize % bytes.len();
            bytes.truncate(keep);
        }
        2 => {
            bytes.push(0x01);
            bytes.extend_from_slice(&(MAX_FRAME + 1 + excess % 1024).to_le_bytes());
            // Garbage after a poisoned prefix must never be decoded.
            bytes.extend_from_slice(b"garbage past the corrupt header");
        }
        _ => {}
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every two-part split of the stream — i.e. every byte boundary —
    /// plus byte-at-a-time and whole-buffer feeds agree with the oracle
    /// on both the frame sequence and the terminal outcome.
    #[test]
    fn any_split_matches_whole_stream_read(
        frames in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..40)), 0..8),
        scenario in 0u8..3,
        cut in any::<u16>(),
        excess in any::<u32>(),
    ) {
        let bytes = wire_bytes(&frames, scenario, cut, excess);
        let expect = oracle(&bytes);

        prop_assert_eq!(&streamed(&bytes, &[bytes.len().max(1)]), &expect,
            "whole-buffer feed diverged");
        prop_assert_eq!(&streamed(&bytes, &[1]), &expect,
            "byte-at-a-time feed diverged");
        for i in 0..=bytes.len() {
            let split = [i.max(1), (bytes.len() - i).max(1)];
            prop_assert_eq!(&streamed(&bytes, &split), &expect,
                "split at byte {} diverged", i);
        }
    }

    /// Random uneven chunkings (the realistic socket-read case) agree
    /// with the oracle as well.
    #[test]
    fn random_chunking_matches_whole_stream_read(
        frames in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64)), 0..10),
        scenario in 0u8..3,
        cut in any::<u16>(),
        excess in any::<u32>(),
        sizes in proptest::collection::vec(1usize..13, 1..10),
    ) {
        let bytes = wire_bytes(&frames, scenario, cut, excess);
        prop_assert_eq!(streamed(&bytes, &sizes), oracle(&bytes));
    }
}

/// An oversized length prefix poisons the decoder for good: the stream is
/// desynchronized, so later bytes — even ones that look like valid frames
/// — must never decode.
#[test]
fn oversized_frame_error_is_sticky() {
    let mut dec = FrameDecoder::new();
    let mut bytes = vec![0x01];
    bytes.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    dec.feed(&bytes);
    let err = dec.next_frame().unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("MAX_FRAME"), "{err}");

    let mut good = Vec::new();
    write_frame(&mut good, 0x01, b"after the corruption").unwrap();
    dec.feed(&good);
    let err = dec.next_frame().unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("desynchronized"), "{err}");
}

/// The corrupt header is detected even when its five bytes arrive one at
/// a time — the decoder must not wait for the (impossible) 64 MiB payload.
#[test]
fn oversized_header_detected_across_feeds() {
    let mut dec = FrameDecoder::new();
    let mut header = vec![0x02];
    header.extend_from_slice(&(MAX_FRAME + 7).to_le_bytes());
    for b in &header[..4] {
        dec.feed(std::slice::from_ref(b));
        assert!(dec.next_frame().unwrap().is_none());
    }
    dec.feed(&header[4..]);
    let err = dec.next_frame().unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
}

/// EOF classification matches `read_frame` at the exact byte level: dying
/// inside the 5-byte header is "length prefix", after it is "payload".
#[test]
fn truncation_error_names_the_right_part() {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, 0x01, b"hello").unwrap();
    for keep in 1..bytes.len() {
        let (_, got) = streamed(&bytes[..keep], &[keep]);
        let (_, want) = oracle(&bytes[..keep]);
        assert_eq!(got, want, "keep={keep}");
        let part = if keep < 5 { "length prefix" } else { "payload" };
        match got {
            Outcome::Error(io::ErrorKind::UnexpectedEof, msg) => {
                assert!(msg.contains(part), "keep={keep}: {msg}")
            }
            other => panic!("keep={keep}: {other:?}"),
        }
    }
}
