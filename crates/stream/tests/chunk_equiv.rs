//! Property: streaming over any chunking ≡ whole-text matching.
//!
//! For random dictionaries, texts and (uneven, often tiny) chunk splits,
//! the set of `(start, pattern)` occurrences reported by [`StreamMatcher`]
//! must equal `StaticMatcher::find_all` on the concatenated text — under
//! both `ExecPolicy::Seq` and `ExecPolicy::Par`.

use std::sync::Arc;

use pdm_core::dict::Sym;
use pdm_core::static1d::StaticMatcher;
use pdm_pram::Ctx;
use pdm_stream::{StreamMatch, StreamMatcher};
use proptest::prelude::*;

fn dedup(pats: Vec<Vec<Sym>>) -> Vec<Vec<Sym>> {
    let mut seen = std::collections::HashSet::new();
    pats.into_iter()
        .filter(|p| seen.insert(p.clone()))
        .collect()
}

fn oracle(d: &Arc<StaticMatcher>, text: &[Sym]) -> Vec<StreamMatch> {
    let ctx = Ctx::seq();
    d.find_all(&ctx, text)
        .into_iter()
        .map(|(i, p)| StreamMatch {
            start: i as u64,
            pat: p,
            len: d.pattern_len(p),
        })
        .collect()
}

fn streamed(d: &Arc<StaticMatcher>, ctx: &Ctx, text: &[Sym], sizes: &[usize]) -> Vec<StreamMatch> {
    let mut m = StreamMatcher::new(Arc::clone(d));
    let mut out = Vec::new();
    let mut at = 0usize;
    let mut k = 0usize;
    while at < text.len() {
        let take = sizes[k % sizes.len()].min(text.len() - at);
        m.push_into(ctx, &text[at..at + take], &mut out);
        at += take;
        k += 1;
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn stream_equals_whole_text(
        pats in proptest::collection::vec(
            proptest::collection::vec(0u32..4, 1..12), 1..8),
        text in proptest::collection::vec(0u32..4, 0..300),
        // Chunk sizes cycle over this list — frequently smaller than the
        // longest pattern, so boundary carries are exercised hard.
        sizes in proptest::collection::vec(1usize..20, 1..12),
    ) {
        let pats = dedup(pats);
        let build_ctx = Ctx::seq();
        let dict = Arc::new(StaticMatcher::build(&build_ctx, &pats).unwrap());
        let want = oracle(&dict, &text);

        let got_seq = streamed(&dict, &Ctx::seq(), &text, &sizes);
        prop_assert_eq!(&got_seq, &want);

        let got_par = streamed(&dict, &Ctx::par(), &text, &sizes);
        prop_assert_eq!(&got_par, &want);
    }

    #[test]
    fn single_symbol_chunks(
        pats in proptest::collection::vec(
            proptest::collection::vec(0u32..3, 1..9), 1..6),
        text in proptest::collection::vec(0u32..3, 0..120),
    ) {
        let pats = dedup(pats);
        let ctx = Ctx::seq();
        let dict = Arc::new(StaticMatcher::build(&ctx, &pats).unwrap());
        let want = oracle(&dict, &text);
        let got = streamed(&dict, &ctx, &text, &[1]);
        prop_assert_eq!(got, want);
    }
}
