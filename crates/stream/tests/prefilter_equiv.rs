//! Property: streaming with an *active* prefilter ≡ whole-text matching.
//!
//! `chunk_equiv.rs` already proves chunking is invisible, but its tiny
//! dense alphabets make the build-time analyzer decline the prefilter.
//! Here the dictionaries are sparse enough that a live engine is chosen,
//! so candidate windows interact with the streaming carry/boundary logic
//! — and the reported match set must still equal `find_all` on the
//! concatenation, at widths 1, 2 and 4.

use std::sync::Arc;

use pdm_core::dict::Sym;
use pdm_core::static1d::StaticMatcher;
use pdm_core::PrefilterDecision;
use pdm_pram::Ctx;
use pdm_stream::{StreamMatch, StreamMatcher};
use proptest::prelude::*;

fn dedup(pats: Vec<Vec<Sym>>) -> Vec<Vec<Sym>> {
    let mut seen = std::collections::HashSet::new();
    pats.into_iter()
        .filter(|p| !p.is_empty() && seen.insert(p.clone()))
        .collect()
}

fn oracle(d: &Arc<StaticMatcher>, text: &[Sym]) -> Vec<StreamMatch> {
    let ctx = Ctx::seq();
    d.find_all(&ctx, text)
        .into_iter()
        .map(|(i, p)| StreamMatch {
            start: i as u64,
            pat: p,
            len: d.pattern_len(p),
        })
        .collect()
}

fn streamed(d: &Arc<StaticMatcher>, ctx: &Ctx, text: &[Sym], sizes: &[usize]) -> Vec<StreamMatch> {
    let mut m = StreamMatcher::new(Arc::clone(d));
    let mut out = Vec::new();
    let mut at = 0usize;
    let mut k = 0usize;
    while at < text.len() {
        let take = sizes[k % sizes.len()].min(text.len() - at);
        m.push_into(ctx, &text[at..at + take], &mut out);
        at += take;
        k += 1;
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stream_with_prefilter_equals_whole_text(
        pats in proptest::collection::vec(
            proptest::collection::vec(0u32..60, 2..10), 1..12),
        text in proptest::collection::vec(0u32..60, 0..500),
        // Chunk sizes straddle PREFILTER_MIN_TEXT, so some windows the
        // streaming layer hands down are filtered and some are not.
        sizes in proptest::collection::vec(1usize..140, 1..8),
    ) {
        let pats = dedup(pats);
        if pats.is_empty() { return Ok(()); }
        let build_ctx = Ctx::seq();
        let dict = Arc::new(StaticMatcher::build(&build_ctx, &pats).unwrap());
        let want = oracle(&dict, &text);

        for threads in [1usize, 2, 4] {
            let ctx = if threads == 1 { Ctx::seq() } else { Ctx::with_threads(threads) };
            let got = streamed(&dict, &ctx, &text, &sizes);
            prop_assert_eq!(&got, &want, "threads {}", threads);
        }
    }
}

/// Guard against the property silently degenerating: a sparse excerpt-style
/// dictionary must select a live engine, and matches planted far apart must
/// be found across chunk boundaries with the scan counters moving.
#[test]
fn planted_sparse_matches_survive_boundaries() {
    let ctx = Ctx::seq();
    let pats = pdm_core::dict::symbolize(&["wizard", "quartz"]);
    let dict = Arc::new(StaticMatcher::build(&ctx, &pats).unwrap());
    match dict.prefilter_decision() {
        PrefilterDecision::RareByte | PrefilterDecision::PairMask => {}
        d => panic!("expected live engine, got {d:?}"),
    }

    let mut text: Vec<Sym> = Vec::new();
    for i in 0..50 {
        text.extend("the mill turns over and over. ".bytes().map(u32::from));
        if i % 17 == 3 {
            text.extend("wizard".bytes().map(u32::from));
        }
        if i % 23 == 11 {
            text.extend("quartz".bytes().map(u32::from));
        }
    }
    let want = oracle(&dict, &text);
    assert!(!want.is_empty(), "planting failed");
    // Split right through the planted words: 7 is coprime to the period.
    for sizes in [&[7usize][..], &[64], &[1], &[311, 5]] {
        let got = streamed(&dict, &ctx, &text, sizes);
        assert_eq!(got, want, "sizes {sizes:?}");
    }
    let c = dict.stats().prefilter_counters;
    assert!(c.scans > 0 && c.windows > 0, "prefilter idle: {c:?}");
}
