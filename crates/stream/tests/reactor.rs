//! Reactor-tier tests: burst-accept fairness, reactor metrics, the
//! `TAG_STATS` snapshot frame, timer-wheel idle reaping, and (behind
//! `--features fault-injection`) reactor-specific chaos — spurious
//! wakeups, `epoll_wait` EINTR, and accept-queue overflow.
//!
//! Serve modes are pinned per test (not read from `PDM_SERVE_MODE`), so
//! this suite is deterministic under the CI differential legs.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pdm_core::dict::symbolize;
use pdm_core::static1d::StaticMatcher;
use pdm_pram::Ctx;
use pdm_stream::proto::{
    decode_stats, decode_summary, read_frame, write_frame, TAG_CHUNK, TAG_CLOSE, TAG_ERROR,
    TAG_MATCH, TAG_STATS, TAG_STATS_RESP, TAG_SUMMARY,
};
use pdm_stream::{GlobalSnapshot, ServeMode, Server, ServerConfig, ServiceConfig};

fn dict() -> Arc<StaticMatcher> {
    let ctx = Ctx::seq();
    Arc::new(StaticMatcher::build(&ctx, &symbolize(&["he", "she", "his", "hers"])).unwrap())
}

fn reactor_cfg() -> ServerConfig {
    ServerConfig {
        service: ServiceConfig {
            workers: 2,
            queue_cap: 4,
            ..Default::default()
        },
        serve_mode: ServeMode::Reactor,
        reactors: 2,
        ..Default::default()
    }
}

fn start(cfg: ServerConfig) -> Server {
    Server::bind(("127.0.0.1", 0), dict(), cfg).expect("bind ephemeral port")
}

fn connect(server: &Server) -> TcpStream {
    let sock = TcpStream::connect(server.local_addr()).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    sock
}

/// Poll a metrics predicate for up to 2 s (event delivery is async).
fn wait_for(server: &Server, what: &str, pred: impl Fn(&GlobalSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let snap = server.metrics();
        if pred(&snap) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Run one tiny session ("ushers" → 3 matches) over an open socket.
/// Returns `Ok(matches_seen)` or `Err` if the connection died first.
fn run_session(sock: TcpStream) -> Result<u64, String> {
    let mut w = sock.try_clone().map_err(|e| e.to_string())?;
    write_frame(&mut w, TAG_CHUNK, b"ushers").map_err(|e| e.to_string())?;
    write_frame(&mut w, TAG_CLOSE, b"").map_err(|e| e.to_string())?;
    let mut r = BufReader::new(sock);
    let mut matches = 0u64;
    loop {
        match read_frame(&mut r).map_err(|e| e.to_string())? {
            Some((TAG_MATCH, _)) => matches += 1,
            Some((TAG_SUMMARY, p)) => {
                let s = decode_summary(&p).ok_or("bad summary")?;
                assert_eq!(s.matches, 3, "wrong match count in summary");
                assert_eq!(matches, 3, "wrong number of match frames");
                return Ok(matches);
            }
            Some((TAG_ERROR, p)) => {
                return Err(format!("server error: {}", String::from_utf8_lossy(&p)))
            }
            Some((tag, _)) => return Err(format!("unexpected frame {tag:#x}")),
            None => return Err("connection closed before summary".into()),
        }
    }
}

/// Satellite: a single listener readiness event must drain the whole
/// accept backlog. All sockets connect *before* any session traffic, so
/// the listener sees one burst; every connection must still be served.
#[test]
fn burst_accept_drains_simultaneous_connections() {
    const N: usize = 40;
    let server = start(reactor_cfg());
    let socks: Vec<TcpStream> = (0..N).map(|_| connect(&server)).collect();
    let handles: Vec<_> = socks
        .into_iter()
        .map(|s| std::thread::spawn(move || run_session(s)))
        .collect();
    for h in handles {
        h.join().unwrap().expect("burst-accepted session");
    }
    wait_for(&server, "all sessions closed", |m| {
        m.sessions_opened == N as u64 && m.sessions_closed == N as u64
    });
    let snap = server.metrics();
    assert_eq!(snap.sessions_failed, 0, "{snap:?}");
    server.shutdown();
}

/// Satellite: reactor-tier counters are populated in reactor mode and a
/// `TAG_STATS` frame returns the same snapshot over the wire.
#[test]
fn reactor_metrics_and_stats_frame() {
    let server = start(reactor_cfg());
    run_session(connect(&server)).expect("session");
    wait_for(&server, "session closed", |m| m.sessions_closed == 1);

    let snap = server.metrics();
    assert!(snap.reactor_wakeups > 0, "{snap:?}");
    assert!(snap.reactor_events > 0, "{snap:?}");
    // chunk + close from the session above, at minimum
    assert!(snap.frames_decoded >= 2, "{snap:?}");

    // Wire snapshot: TAG_STATS → TAG_STATS_RESP with the same counters.
    let sock = connect(&server);
    let mut w = sock.try_clone().unwrap();
    write_frame(&mut w, TAG_STATS, b"").unwrap();
    let mut r = BufReader::new(sock);
    let wire = loop {
        match read_frame(&mut r).unwrap() {
            Some((TAG_STATS_RESP, p)) => break decode_stats(&p).expect("decodable stats"),
            Some((tag, _)) => panic!("unexpected frame {tag:#x}"),
            None => panic!("closed before stats reply"),
        }
    };
    assert_eq!(wire.sessions_closed, 1, "{wire:?}");
    assert!(wire.frames_decoded >= 2, "{wire:?}");
    assert!(wire.reactor_wakeups > 0, "{wire:?}");
    server.shutdown();
}

/// The blocking tier stays selectable; it serves correctly and leaves the
/// reactor counters untouched.
#[test]
fn threaded_mode_explicitly_selectable() {
    let cfg = ServerConfig {
        serve_mode: ServeMode::Threaded,
        ..reactor_cfg()
    };
    let server = start(cfg);
    run_session(connect(&server)).expect("threaded session");
    wait_for(&server, "session closed", |m| m.sessions_closed == 1);
    let snap = server.metrics();
    assert_eq!(snap.reactor_wakeups, 0, "{snap:?}");
    assert_eq!(snap.frames_decoded, 0, "{snap:?}");

    // TAG_STATS answers in threaded mode too (pdm stats works either way).
    let sock = connect(&server);
    let mut w = sock.try_clone().unwrap();
    write_frame(&mut w, TAG_STATS, b"").unwrap();
    let mut r = BufReader::new(sock);
    match read_frame(&mut r).unwrap() {
        Some((TAG_STATS_RESP, p)) => {
            let wire = decode_stats(&p).expect("decodable stats");
            assert_eq!(wire.sessions_closed, 1, "{wire:?}");
        }
        other => panic!("expected stats reply, got {other:?}"),
    }
    server.shutdown();
}

/// Idle reaping in reactor mode goes through the timer wheel: the conn
/// gets the same terminal error as threaded mode, and the wheel's
/// expiration counter ticks.
#[test]
fn idle_timeout_fires_through_timer_wheel() {
    let cfg = ServerConfig {
        read_timeout: Some(Duration::from_millis(80)),
        ..reactor_cfg()
    };
    let server = start(cfg);
    let sock = connect(&server);
    let mut w = sock.try_clone().unwrap();
    // Mid-session idle: open the session, then go quiet.
    write_frame(&mut w, TAG_CHUNK, b"ushers").unwrap();
    let mut r = BufReader::new(sock);
    let mut saw_timeout = false;
    loop {
        match read_frame(&mut r).unwrap() {
            Some((TAG_MATCH, _)) => {}
            Some((TAG_ERROR, p)) => {
                let msg = String::from_utf8_lossy(&p).into_owned();
                assert!(msg.contains("timeout"), "{msg}");
                saw_timeout = true;
            }
            Some((tag, _)) => panic!("unexpected frame {tag:#x}"),
            None => break,
        }
    }
    assert!(saw_timeout, "no timeout error frame");
    wait_for(&server, "timeout accounted", |m| {
        m.read_timeouts == 1 && m.sessions_closed == 1 && m.timer_expirations > 0
    });
    server.shutdown();
}

#[cfg(feature = "fault-injection")]
mod chaos {
    use super::*;
    use pdm_stream::faults::{self, FaultConfig};
    use std::sync::{Mutex, PoisonError};

    /// The fault plan is process-global: serialize and clear.
    static CHAOS_LOCK: Mutex<()> = Mutex::new(());

    struct ChaosGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

    impl Drop for ChaosGuard<'_> {
        fn drop(&mut self) {
            faults::clear();
        }
    }

    fn chaos() -> ChaosGuard<'static> {
        let g = CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        faults::clear();
        ChaosGuard(g)
    }

    /// Spurious wakeups and EINTR'd waits must be invisible: sessions
    /// complete exactly, and the injected faults demonstrably fired.
    #[test]
    fn survives_spurious_wakeups_and_eintr() {
        let _g = chaos();
        faults::install(FaultConfig {
            spurious_wake_every: 2,
            spurious_wake_max: 10_000,
            wait_eintr_every: 3,
            wait_eintr_max: 10_000,
            ..Default::default()
        });
        let server = start(reactor_cfg());
        for _ in 0..4 {
            run_session(connect(&server)).expect("session under wait faults");
        }
        wait_for(&server, "sessions closed", |m| m.sessions_closed == 4);
        let counts = faults::counts();
        assert!(counts.spurious_wakes > 0, "{counts:?}");
        assert!(counts.wait_eintrs > 0, "{counts:?}");
        server.shutdown();
    }

    /// Accept-queue overflow (synthetic ECONNABORTED after `accept`)
    /// drops that arrival but must not end the burst or wedge the
    /// listener: later connections are served normally.
    #[test]
    fn accept_overflow_drops_conn_and_keeps_accepting() {
        let _g = chaos();
        faults::install(FaultConfig {
            accept_overflow_every: 3,
            accept_overflow_max: 2,
            ..Default::default()
        });
        let server = start(reactor_cfg());
        let mut ok = 0;
        let mut dropped = 0;
        // Sequential connects: the 3rd and 6th arrivals are aborted.
        for _ in 0..12 {
            match run_session(connect(&server)) {
                Ok(_) => ok += 1,
                Err(_) => dropped += 1,
            }
        }
        assert_eq!(dropped, 2, "expected exactly the two injected aborts");
        assert_eq!(ok, 10);
        let counts = faults::counts();
        assert_eq!(counts.accept_overflows, 2, "{counts:?}");
        wait_for(&server, "overflow accounted", |m| m.accept_retries >= 2);
        // The plan is exhausted: a fresh connection serves fine.
        run_session(connect(&server)).expect("post-overflow session");
        server.shutdown();
    }
}
