//! Connection-lifecycle and degradation tests for the TCP server: error
//! frames for protocol violations, truncation accounting, load shedding,
//! read timeouts, graceful vs. forced drain, the resume handshake, and the
//! reconnecting client's happy path. No fault injection needed — these
//! exercise real sockets misbehaving in real ways.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pdm_core::dict::symbolize;
use pdm_core::static1d::StaticMatcher;
use pdm_pram::Ctx;
use pdm_stream::proto::{
    decode_ack, decode_hello_ack, decode_match, decode_summary, encode_hello, read_frame,
    write_frame, Hello, MAX_FRAME, TAG_ACK, TAG_CHUNK, TAG_CLOSE, TAG_ERROR, TAG_HELLO,
    TAG_HELLO_ACK, TAG_MATCH, TAG_SUMMARY,
};
use pdm_stream::{RetryConfig, RetryingClient, Server, ServerConfig, ServiceConfig};

fn start(cfg: ServerConfig) -> Server {
    let ctx = Ctx::seq();
    let dict =
        Arc::new(StaticMatcher::build(&ctx, &symbolize(&["he", "she", "his", "hers"])).unwrap());
    Server::bind(("127.0.0.1", 0), dict, cfg).expect("bind ephemeral port")
}

fn small_cfg() -> ServerConfig {
    ServerConfig {
        service: ServiceConfig {
            workers: 2,
            queue_cap: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn connect(server: &Server) -> TcpStream {
    let sock = TcpStream::connect(server.local_addr()).expect("connect");
    // Never let a broken test hang the suite.
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    sock
}

/// Poll a metrics predicate for up to 2 s (event delivery is async).
fn wait_for(server: &Server, what: &str, pred: impl Fn(&pdm_stream::GlobalSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let snap = server.metrics();
        if pred(&snap) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn unknown_tag_gets_error_frame_and_consistent_accounting() {
    let server = start(small_cfg());
    let sock = connect(&server);
    let mut w = sock.try_clone().unwrap();
    write_frame(&mut w, TAG_CHUNK, b"ush").unwrap();
    write_frame(&mut w, 0x7f, b"junk").unwrap();
    let mut r = BufReader::new(sock);
    match read_frame(&mut r).unwrap() {
        Some((TAG_ERROR, p)) => {
            let msg = String::from_utf8_lossy(&p).into_owned();
            assert!(msg.contains("0x7f"), "{msg}");
        }
        other => panic!("expected TAG_ERROR, got {other:?}"),
    }
    // The error frame is terminal: the server closes the connection after
    // it, and the session still counts as closed.
    assert_eq!(read_frame(&mut r).unwrap(), None);
    wait_for(&server, "session accounting", |g| {
        g.sessions_opened == 1 && g.sessions_closed == 1
    });
    server.shutdown();
}

#[test]
fn oversized_frame_gets_error_frame() {
    let server = start(small_cfg());
    let sock = connect(&server);
    let mut w = sock.try_clone().unwrap();
    write_frame(&mut w, TAG_CHUNK, b"ush").unwrap();
    // A raw header promising more than MAX_FRAME; the payload never needs
    // to be sent — the server must reject on the length alone.
    w.write_all(&[TAG_CHUNK]).unwrap();
    w.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
    w.flush().unwrap();
    let mut r = BufReader::new(sock);
    match read_frame(&mut r).unwrap() {
        Some((TAG_ERROR, p)) => {
            let msg = String::from_utf8_lossy(&p).into_owned();
            assert!(msg.contains("MAX_FRAME"), "{msg}");
        }
        other => panic!("expected TAG_ERROR, got {other:?}"),
    }
    wait_for(&server, "session accounting", |g| {
        g.sessions_opened == 1 && g.sessions_closed == 1
    });
    server.shutdown();
}

#[test]
fn death_mid_frame_counts_as_truncation() {
    let server = start(small_cfg());
    {
        let sock = connect(&server);
        let mut w = sock.try_clone().unwrap();
        // Header promises 10 payload bytes; die after 3.
        w.write_all(&[TAG_CHUNK]).unwrap();
        w.write_all(&10u32.to_le_bytes()).unwrap();
        w.write_all(b"abc").unwrap();
        w.flush().unwrap();
        // Drop both halves: the server sees EOF inside the frame.
    }
    wait_for(&server, "truncated_frames", |g| g.truncated_frames >= 1);
    server.shutdown();
}

#[test]
fn connection_cap_sheds_with_busy_error() {
    let server = start(ServerConfig {
        max_conns: 1,
        ..small_cfg()
    });
    // First connection: complete the handshake so we know it is live.
    let first = connect(&server);
    write_frame(
        &mut first.try_clone().unwrap(),
        TAG_HELLO,
        &encode_hello(&Hello::default()),
    )
    .unwrap();
    let mut r1 = BufReader::new(first.try_clone().unwrap());
    match read_frame(&mut r1).unwrap() {
        Some((TAG_HELLO_ACK, _)) => {}
        other => panic!("expected hello-ack, got {other:?}"),
    }
    // Second connection: over the cap → busy error, then close.
    let second = connect(&server);
    let mut r2 = BufReader::new(second);
    match read_frame(&mut r2).unwrap() {
        Some((TAG_ERROR, p)) => {
            let msg = String::from_utf8_lossy(&p).into_owned();
            assert!(msg.contains("busy"), "{msg}");
        }
        other => panic!("expected busy TAG_ERROR, got {other:?}"),
    }
    wait_for(&server, "conns_shed", |g| g.conns_shed >= 1);
    // The first connection still works end to end.
    write_frame(&mut first.try_clone().unwrap(), TAG_CHUNK, b"ushers").unwrap();
    write_frame(&mut first.try_clone().unwrap(), TAG_CLOSE, b"").unwrap();
    let mut n_matches = 0;
    loop {
        match read_frame(&mut r1).unwrap() {
            Some((TAG_MATCH, _)) => n_matches += 1,
            Some((TAG_ACK, _)) => {}
            Some((TAG_SUMMARY, p)) => {
                assert_eq!(decode_summary(&p).unwrap().matches, 3);
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(n_matches, 3);
    server.shutdown();
}

#[test]
fn idle_connection_is_reaped_by_read_timeout() {
    let server = start(ServerConfig {
        read_timeout: Some(Duration::from_millis(100)),
        ..small_cfg()
    });
    let sock = connect(&server);
    // Send nothing at all; the server must not wait forever.
    let mut r = BufReader::new(sock);
    match read_frame(&mut r).unwrap() {
        Some((TAG_ERROR, p)) => {
            let msg = String::from_utf8_lossy(&p).into_owned();
            assert!(msg.contains("timeout"), "{msg}");
        }
        other => panic!("expected timeout TAG_ERROR, got {other:?}"),
    }
    wait_for(&server, "read_timeouts", |g| g.read_timeouts >= 1);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_sessions() {
    let server = start(ServerConfig {
        drain_deadline: Duration::from_secs(5),
        ..small_cfg()
    });
    let addr = server.local_addr();
    let client = std::thread::spawn(move || {
        let sock = TcpStream::connect(addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut w = BufWriter::new(sock.try_clone().unwrap());
        write_frame(&mut w, TAG_CHUNK, b"ush").unwrap();
        w.flush().unwrap();
        // Stay in flight long enough for shutdown to start draining.
        std::thread::sleep(Duration::from_millis(300));
        write_frame(&mut w, TAG_CHUNK, b"ers").unwrap();
        write_frame(&mut w, TAG_CLOSE, b"").unwrap();
        w.flush().unwrap();
        let mut r = BufReader::new(sock);
        let mut n_matches = 0u64;
        loop {
            match read_frame(&mut r).unwrap() {
                Some((TAG_MATCH, _)) => n_matches += 1,
                Some((TAG_SUMMARY, p)) => return (n_matches, decode_summary(&p).unwrap()),
                other => panic!("unexpected frame {other:?}"),
            }
        }
    });
    // Wait until the connection is live, then drain.
    let deadline = Instant::now() + Duration::from_secs(2);
    while server.live_conns() == 0 {
        assert!(Instant::now() < deadline, "connection never became live");
        std::thread::sleep(Duration::from_millis(5));
    }
    let t0 = Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(4),
        "drain overran its deadline: {:?}",
        t0.elapsed()
    );
    let (n_matches, summary) = client.join().unwrap();
    // The in-flight session ran to a clean summary during the drain.
    assert_eq!(n_matches, 3);
    assert_eq!(summary.consumed, 6);
}

#[test]
fn forced_drain_closes_stragglers_at_the_deadline() {
    let server = start(ServerConfig {
        drain_deadline: Duration::from_millis(150),
        ..small_cfg()
    });
    let addr = server.local_addr();
    // A client that sends one chunk and then never closes. Detached on
    // purpose: its socket read will fail once the server force-closes.
    std::thread::spawn(move || {
        let sock = TcpStream::connect(addr).unwrap();
        write_frame(&mut sock.try_clone().unwrap(), TAG_CHUNK, b"ush").unwrap();
        let mut r = BufReader::new(sock);
        let _ = read_frame(&mut r); // blocks until the force-close
    });
    let deadline = Instant::now() + Duration::from_secs(2);
    while server.live_conns() == 0 {
        assert!(Instant::now() < deadline, "connection never became live");
        std::thread::sleep(Duration::from_millis(5));
    }
    let t0 = Instant::now();
    server.shutdown();
    // 150 ms deadline + ≤1 s force-close grace, with slack for CI.
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "forced drain hung: {:?}",
        t0.elapsed()
    );
}

#[test]
fn hello_resume_offsets_and_acks() {
    let server = start(small_cfg());
    let sock = connect(&server);
    let mut w = sock.try_clone().unwrap();
    write_frame(
        &mut w,
        TAG_HELLO,
        &encode_hello(&Hello {
            resume_offset: 100,
            ack_every: 1,
        }),
    )
    .unwrap();
    let mut r = BufReader::new(sock);
    match read_frame(&mut r).unwrap() {
        Some((TAG_HELLO_ACK, p)) => {
            // Longest pattern is "hers".
            assert_eq!(decode_hello_ack(&p), Some(4));
        }
        other => panic!("expected hello-ack, got {other:?}"),
    }
    write_frame(&mut w, TAG_CHUNK, b"ushers").unwrap();
    write_frame(&mut w, TAG_CLOSE, b"").unwrap();
    let mut starts = Vec::new();
    let mut acked = None;
    let summary = loop {
        match read_frame(&mut r).unwrap() {
            Some((TAG_MATCH, p)) => starts.push(decode_match(&p).unwrap().start),
            Some((TAG_ACK, p)) => acked = decode_ack(&p),
            Some((TAG_SUMMARY, p)) => break decode_summary(&p).unwrap(),
            other => panic!("unexpected frame {other:?}"),
        }
    };
    starts.sort_unstable();
    // Offsets are absolute from the resumed position.
    assert_eq!(starts, vec![101, 102, 102]); // she, he, hers
    assert_eq!(acked, Some(106));
    assert_eq!(summary.consumed, 106);
    server.shutdown();
}

#[test]
fn retrying_client_happy_path_matches_raw_protocol() {
    let server = start(small_cfg());
    let mut client = RetryingClient::connect(server.local_addr(), RetryConfig::default()).unwrap();
    let mut matches = client.send(b"ush").unwrap();
    matches.extend(client.send(b"ers").unwrap());
    let stats = client.stats();
    let (rest, summary) = client.finish().unwrap();
    matches.extend(rest);
    matches.sort_unstable();
    let got: Vec<(u64, u32)> = matches.iter().map(|m| (m.start, m.len)).collect();
    assert_eq!(got, vec![(1, 3), (2, 2), (2, 4)]); // she@1, he@2, hers@2
    assert_eq!(summary.consumed, 6);
    assert_eq!(summary.chunks, 2);
    assert_eq!(summary.matches, 3);
    assert_eq!(summary.reconnects, 0);
    assert_eq!(stats.duplicates_dropped, 0);
    wait_for(&server, "session accounting", |g| {
        g.sessions_opened == 1 && g.sessions_closed == 1
    });
    server.shutdown();
}
