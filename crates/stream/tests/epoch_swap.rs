//! End-to-end live dictionary updates: a versioned server accepts
//! `DICT_*` admin frames while sessions stream, publishes commits as new
//! epochs, and sessions adopt them at chunk boundaries without dropping
//! the connection. Every delivered match must be correct for the epoch
//! its chunk started in (pre- and post-swap patterns both covered), and a
//! killed server must recover the exact committed dictionary from its log
//! (replay + compaction round trip).

use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pdm_core::dict::to_symbols;
use pdm_core::static1d::StaticMatcher;
use pdm_dict::{DictStore, SnapshotPath};
use pdm_pram::Ctx;
use pdm_stream::proto::{
    decode_dict_info, decode_epoch, decode_match, decode_summary, read_frame, write_frame,
    TAG_CHUNK, TAG_CLOSE, TAG_DICT_ADD, TAG_DICT_COMMIT, TAG_DICT_ERR, TAG_DICT_INFO,
    TAG_DICT_INFO_RESP, TAG_DICT_OK, TAG_EPOCH, TAG_MATCH, TAG_SUMMARY,
};
use pdm_stream::{RetryConfig, RetryingClient, Server, ServerConfig, ServiceConfig};

fn cfg() -> ServerConfig {
    ServerConfig {
        service: ServiceConfig {
            workers: 2,
            queue_cap: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn temp_log(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pdm-epoch-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("dict.pdml")
}

/// A store whose committed epoch 1 is `{he, she}`.
fn seeded_store(log: &PathBuf) -> DictStore {
    let mut store = DictStore::open(log).unwrap();
    store.stage_add(&to_symbols("he")).unwrap();
    store.stage_add(&to_symbols("she")).unwrap();
    store.commit(&Ctx::seq()).unwrap();
    store
}

fn connect(server: &Server) -> TcpStream {
    let sock = TcpStream::connect(server.local_addr()).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    sock
}

/// Read frames until `stop` appears; returns every frame read, inclusive.
fn read_until(r: &mut impl std::io::Read, stop: u8) -> Vec<(u8, Vec<u8>)> {
    let mut out = Vec::new();
    loop {
        match read_frame(r).expect("read frame") {
            Some((tag, p)) => {
                out.push((tag, p));
                if tag == stop {
                    return out;
                }
            }
            None => panic!("connection closed while waiting for tag {stop:#x}"),
        }
    }
}

fn wait_for(server: &Server, what: &str, pred: impl Fn(&pdm_stream::GlobalSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let snap = server.metrics();
        if pred(&snap) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The acceptance-criteria path, one connection end to end: stream a
/// chunk against epoch 1, add + commit a pattern on the same connection,
/// stream another chunk, and check each chunk's matches against its own
/// epoch's oracle — with the `TAG_EPOCH` marker separating them and the
/// session closing with a summary (never dropped).
#[test]
fn live_update_swaps_epoch_without_dropping_connection() {
    let log = temp_log("swap");
    let server = Server::bind_versioned(("127.0.0.1", 0), seeded_store(&log), cfg()).unwrap();
    let sock = connect(&server);
    let mut w = sock.try_clone().unwrap();
    let mut r = BufReader::new(sock);

    // Epoch 1 = {he, she}. "ushers": she@1(len 3), he@2(len 2) — and NOT
    // hers@2, which is only committed later (no matches from a dictionary
    // that was never committed for this chunk).
    write_frame(&mut w, TAG_CHUNK, b"ushers").unwrap();
    let mut pre = Vec::new();
    while pre.len() < 2 {
        match read_frame(&mut r).expect("read").expect("open") {
            (TAG_MATCH, p) => pre.push(decode_match(&p).unwrap()),
            (TAG_EPOCH, _) => panic!("epoch marker before any commit"),
            _ => {}
        }
    }
    let mut pre_keys: Vec<(u64, u32)> = pre.iter().map(|m| (m.start, m.len)).collect();
    pre_keys.sort_unstable();
    assert_eq!(pre_keys, vec![(1, 3), (2, 2)], "epoch-1 oracle on chunk 1");

    // Admin frames ride the same connection as the stream.
    write_frame(&mut w, TAG_DICT_ADD, b"hers").unwrap();
    let frames = read_until(&mut r, TAG_DICT_OK);
    assert!(
        frames.iter().all(|(t, _)| *t != TAG_EPOCH),
        "staging alone must not swap epochs"
    );
    write_frame(&mut w, TAG_DICT_COMMIT, &[]).unwrap();
    let frames = read_until(&mut r, TAG_DICT_OK);
    let (_, ok) = frames.last().unwrap();
    assert_eq!(
        u64::from_le_bytes(ok.clone().try_into().unwrap()),
        2,
        "commit publishes epoch 2"
    );

    // Epoch 2 = {he, she, hers}. Chunk 2 "xhersx" (abs offsets 6..12):
    // he@7(len 2), hers@7(len 4). The epoch marker must precede them.
    write_frame(&mut w, TAG_CHUNK, b"xhersx").unwrap();
    write_frame(&mut w, TAG_CLOSE, &[]).unwrap();
    let frames = read_until(&mut r, TAG_SUMMARY);
    let epoch_at = frames
        .iter()
        .position(|(t, _)| *t == TAG_EPOCH)
        .expect("epoch marker delivered before the swapped chunk's matches");
    let change = decode_epoch(&frames[epoch_at].1).unwrap();
    assert_eq!(change.epoch, 2);
    assert_eq!(change.max_pattern_len, 4, "m follows the epoch");
    let mut post_keys: Vec<(u64, u32)> = frames[epoch_at..]
        .iter()
        .filter(|(t, _)| *t == TAG_MATCH)
        .map(|(_, p)| decode_match(p).unwrap())
        .map(|m| (m.start, m.len))
        .collect();
    post_keys.sort_unstable();
    assert_eq!(post_keys, vec![(7, 2), (7, 4)], "epoch-2 oracle on chunk 2");
    assert!(
        frames[..epoch_at].iter().all(|(t, _)| *t != TAG_MATCH),
        "no chunk-2 matches before the epoch marker"
    );
    let (tag, p) = frames.last().unwrap();
    assert_eq!(*tag, TAG_SUMMARY, "session closed cleanly, not dropped");
    let summary = decode_summary(p).unwrap();
    assert_eq!(summary.consumed, 12);

    let g = server.metrics();
    assert_eq!(g.epoch_swaps, 1);
    assert_eq!(g.epoch_adoptions, 1);
    assert_eq!(g.sessions_failed, 0);
    server.shutdown();
    std::fs::remove_dir_all(log.parent().unwrap()).ok();
}

/// The reconnecting client tracks `TAG_EPOCH`: its carry/replay math
/// follows the new `max_pattern_len` and it reports the epoch change.
#[test]
fn retrying_client_follows_epoch_changes() {
    let log = temp_log("client");
    let server = Server::bind_versioned(("127.0.0.1", 0), seeded_store(&log), cfg()).unwrap();
    let mut client = RetryingClient::connect(
        server.local_addr(),
        RetryConfig {
            ack_every: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let mut matches = client.send(b"ushers").unwrap();
    wait_for(&server, "chunk 1 processed", |g| g.chunks >= 1);

    // Commit {hers} from a second, admin-only connection.
    let admin = connect(&server);
    let mut aw = admin.try_clone().unwrap();
    let mut ar = BufReader::new(admin);
    write_frame(&mut aw, TAG_DICT_ADD, b"hers").unwrap();
    read_until(&mut ar, TAG_DICT_OK);
    write_frame(&mut aw, TAG_DICT_COMMIT, &[]).unwrap();
    read_until(&mut ar, TAG_DICT_OK);
    write_frame(&mut aw, TAG_DICT_INFO, &[]).unwrap();
    let frames = read_until(&mut ar, TAG_DICT_INFO_RESP);
    let info = decode_dict_info(&frames.last().unwrap().1).unwrap();
    assert_eq!((info.epoch, info.patterns, info.staged), (2, 3, 0));
    drop(aw);
    drop(ar);

    matches.extend(client.send(b"xhersx").unwrap());
    let (rest, summary) = client.finish().unwrap();
    matches.extend(rest);
    let mut keys: Vec<(u64, u32)> = matches.iter().map(|m| (m.start, m.len)).collect();
    keys.sort_unstable();
    assert_eq!(
        keys,
        vec![(1, 3), (2, 2), (7, 2), (7, 4)],
        "each chunk matched against its own epoch"
    );
    assert_eq!(summary.consumed, 12);
    server.shutdown();
    std::fs::remove_dir_all(log.parent().unwrap()).ok();
}

/// Kill−restart: a new server on the same `--dict-log` recovers the exact
/// committed dictionary (including live updates made over the wire), and
/// the log survives a compaction round trip.
#[test]
fn kill_restart_recovers_committed_dictionary() {
    let log = temp_log("restart");
    {
        let server = Server::bind_versioned(("127.0.0.1", 0), seeded_store(&log), cfg()).unwrap();
        let sock = connect(&server);
        let mut w = sock.try_clone().unwrap();
        let mut r = BufReader::new(sock);
        write_frame(&mut w, TAG_DICT_ADD, b"hers").unwrap();
        read_until(&mut r, TAG_DICT_OK);
        write_frame(&mut w, TAG_DICT_COMMIT, &[]).unwrap();
        read_until(&mut r, TAG_DICT_OK);
        // "Kill": no drain niceties for the log — shutdown now.
        server.shutdown();
    }

    // Replay recovers epoch 2 = {he, she, hers}; compaction preserves it.
    let mut store = DictStore::open(&log).unwrap();
    assert_eq!((store.epoch(), store.pattern_count()), (2, 3));
    store.compact(&Ctx::seq()).unwrap();
    drop(store);
    let store = DictStore::open(&log).unwrap();
    assert_eq!((store.epoch(), store.pattern_count()), (2, 3));
    let mut live = store.live_patterns();
    live.sort();
    let mut want = vec![to_symbols("he"), to_symbols("she"), to_symbols("hers")];
    want.sort();
    assert_eq!(live, want);

    // And the restarted server serves exactly that dictionary — cold-loaded
    // straight from the fresh `.snap` sidecar compaction just wrote, with
    // no parallel rebuild at boot.
    let server = Server::bind_versioned(("127.0.0.1", 0), store, cfg()).unwrap();
    let admin = server.dict_admin().expect("versioned server has an admin");
    assert!(
        admin.booted_cold(),
        "expected cold boot, got fallback {:?}",
        admin.boot_fallback()
    );
    assert_eq!(admin.handle().load().path(), SnapshotPath::ColdLoaded);
    let sock = connect(&server);
    let mut w = sock.try_clone().unwrap();
    let mut r = BufReader::new(sock);
    write_frame(&mut w, TAG_CHUNK, b"ushers").unwrap();
    write_frame(&mut w, TAG_CLOSE, &[]).unwrap();
    let frames = read_until(&mut r, TAG_SUMMARY);
    let mut keys: Vec<(u64, u32)> = frames
        .iter()
        .filter(|(t, _)| *t == TAG_MATCH)
        .map(|(_, p)| decode_match(p).unwrap())
        .map(|m| (m.start, m.len))
        .collect();
    keys.sort_unstable();
    assert_eq!(keys, vec![(1, 3), (2, 2), (2, 4)], "she, he, hers");
    server.shutdown();
    std::fs::remove_dir_all(log.parent().unwrap()).ok();
}

/// A static (`Server::bind`) server politely rejects admin frames and the
/// session keeps working.
#[test]
fn static_server_rejects_dict_frames() {
    let ctx = Ctx::seq();
    let dict =
        Arc::new(StaticMatcher::build(&ctx, &[to_symbols("he"), to_symbols("she")]).unwrap());
    let server = Server::bind(("127.0.0.1", 0), dict, cfg()).unwrap();
    let sock = connect(&server);
    let mut w = sock.try_clone().unwrap();
    let mut r = BufReader::new(sock);
    write_frame(&mut w, TAG_DICT_ADD, b"hers").unwrap();
    let frames = read_until(&mut r, TAG_DICT_ERR);
    let msg = String::from_utf8_lossy(&frames.last().unwrap().1).into_owned();
    assert!(msg.contains("static"), "{msg}");
    // The stream itself still works after the rejected admin op.
    write_frame(&mut w, TAG_CHUNK, b"ushers").unwrap();
    write_frame(&mut w, TAG_CLOSE, &[]).unwrap();
    let frames = read_until(&mut r, TAG_SUMMARY);
    assert_eq!(
        frames.iter().filter(|(t, _)| *t == TAG_MATCH).count(),
        2,
        "he + she still match"
    );
    server.shutdown();
}
