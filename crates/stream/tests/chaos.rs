//! Chaos suite: deterministic fault injection against the live service and
//! server (`--features fault-injection`). The invariant under test is
//! always the same: **whatever faults fire, every session either delivers
//! the exact fault-free match set (after client retries) or terminates
//! with an explicit error — never a hang, never a duplicate, never a
//! silent gap** — and the service keeps serving afterwards.
//!
//! The fault plan is process-global, so tests serialize on a mutex and
//! clear the plan on exit. Injected panics are real panics (exercising the
//! real `catch_unwind` supervision paths); `quiet_injected_panics`
//! suppresses only their backtrace spam.

#![cfg(feature = "fault-injection")]

use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use pdm_core::dict::{symbolize, to_symbols};
use pdm_core::static1d::StaticMatcher;
use pdm_dict::DictStore;
use pdm_pram::Ctx;
use pdm_stream::faults::{self, FaultConfig};
use pdm_stream::proto::{read_frame, write_frame, TAG_DICT_ADD, TAG_DICT_COMMIT, TAG_DICT_OK};
use pdm_stream::{
    RetryConfig, RetryingClient, Server, ServerConfig, ServiceConfig, ShardedService,
};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The global fault plan means chaos tests must not overlap.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

struct ChaosGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl Drop for ChaosGuard<'_> {
    fn drop(&mut self) {
        faults::clear();
    }
}

fn chaos() -> ChaosGuard<'static> {
    let g = CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    faults::quiet_injected_panics();
    ChaosGuard(g)
}

fn dict() -> Arc<StaticMatcher> {
    let ctx = Ctx::seq();
    Arc::new(StaticMatcher::build(&ctx, &symbolize(&["he", "she", "his", "hers"])).unwrap())
}

/// Deterministic "ushers"-alphabet text: dense in real matches.
fn gen_text(seed: u64, n: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    const AB: &[u8] = b"usherx ";
    (0..n).map(|_| AB[rng.gen_range(0..AB.len())]).collect()
}

/// Ground truth: one offline pass over the whole text.
fn oracle(d: &Arc<StaticMatcher>, text: &[u8]) -> Vec<(u64, u32)> {
    let ctx = Ctx::seq();
    let syms: Vec<u32> = text.iter().map(|&b| u32::from(b)).collect();
    let mut out: Vec<(u64, u32)> = d
        .find_all(&ctx, &syms)
        .into_iter()
        .map(|(i, p)| (i as u64, p))
        .collect();
    out.sort_unstable();
    out
}

fn server(dict: Arc<StaticMatcher>, workers: usize) -> Server {
    Server::bind(
        ("127.0.0.1", 0),
        dict,
        ServerConfig {
            service: ServiceConfig {
                workers,
                queue_cap: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("bind ephemeral port")
}

/// Stream `text` through a `RetryingClient` in `chunk`-byte chunks and
/// assert the delivered match set is exactly the fault-free oracle.
fn assert_exactly_once(server: &Server, d: &Arc<StaticMatcher>, text: &[u8], chunk: usize) -> u64 {
    let mut client = RetryingClient::connect(
        server.local_addr(),
        RetryConfig {
            base_backoff: Duration::from_millis(2),
            seed: 7,
            ..Default::default()
        },
    )
    .expect("initial connect");
    let mut got = Vec::new();
    for c in text.chunks(chunk) {
        got.extend(client.send(c).unwrap());
    }
    let (rest, summary) = client.finish().unwrap();
    got.extend(rest);
    let mut got: Vec<(u64, u32)> = got.iter().map(|m| (m.start, m.pat)).collect();
    got.sort_unstable();
    assert_eq!(got, oracle(d, text), "delivered ≠ fault-free oracle");
    assert_eq!(summary.consumed, text.len() as u64, "stream fully consumed");
    assert_eq!(summary.matches, got.len() as u64);
    summary.reconnects
}

/// Crash a worker at the exact moment it adopts a freshly published
/// epoch. The session in flight dies, the supervisor respawns the worker,
/// the client resumes — and the delivered set still respects per-epoch
/// semantics: with an additive update (epoch 2 ⊇ epoch 1), everything in
/// the epoch-1 oracle arrives exactly once, nothing outside the epoch-2
/// oracle ever arrives (a staged-but-never-committed pattern matches
/// nowhere), and post-swap chunks do match the new pattern.
#[test]
fn worker_crash_mid_epoch_swap_keeps_per_epoch_exactness() {
    let _g = chaos();
    let log_dir = std::env::temp_dir().join(format!("pdm-chaos-swap-{}", std::process::id()));
    std::fs::create_dir_all(&log_dir).unwrap();
    let seed_pats = ["he", "she", "his", "hers"];
    let mut store = DictStore::open(&log_dir.join("dict.pdml")).unwrap();
    for p in seed_pats {
        store.stage_add(&to_symbols(p)).unwrap();
    }
    store.commit(&Ctx::seq()).unwrap();
    let srv = Server::bind_versioned(
        ("127.0.0.1", 0),
        store,
        ServerConfig {
            service: ServiceConfig {
                workers: 1,
                queue_cap: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    // Arm the crash before the commit exists: the first chunk-boundary
    // epoch adoption anywhere panics its worker.
    faults::install(FaultConfig {
        swap_crash_every: 1,
        swap_crash_max: 1,
        ..Default::default()
    });

    let text = gen_text(29, 12_000);
    let half = text.len() / 2;
    let mut client = RetryingClient::connect(
        srv.local_addr(),
        RetryConfig {
            base_backoff: Duration::from_millis(2),
            seed: 9,
            ..Default::default()
        },
    )
    .unwrap();
    let mut got = Vec::new();
    for c in text[..half].chunks(100) {
        got.extend(client.send(c).unwrap());
    }
    // Everything so far ran under epoch 1. Now commit {ush} (epoch 2) and
    // stage a pattern that is NEVER committed.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while srv.metrics().chunks < (half as u64).div_ceil(100) {
        assert!(std::time::Instant::now() < deadline, "chunks not drained");
        std::thread::sleep(Duration::from_millis(5));
    }
    let admin = std::net::TcpStream::connect(srv.local_addr()).unwrap();
    admin
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut aw = admin.try_clone().unwrap();
    let mut ar = std::io::BufReader::new(admin);
    let reply = |r: &mut std::io::BufReader<std::net::TcpStream>| loop {
        match read_frame(r).unwrap().expect("admin reply") {
            (TAG_DICT_OK, _) => return,
            _ => continue,
        }
    };
    write_frame(&mut aw, TAG_DICT_ADD, b"ush").unwrap();
    reply(&mut ar);
    write_frame(&mut aw, TAG_DICT_COMMIT, &[]).unwrap();
    reply(&mut ar);
    write_frame(&mut aw, TAG_DICT_ADD, b"never").unwrap();
    reply(&mut ar);
    drop(aw);
    drop(ar);

    // The next chunk boundary adopts epoch 2 → injected crash → respawn →
    // client resume; the rest streams against epoch 2.
    for c in text[half..].chunks(100) {
        got.extend(client.send(c).unwrap());
    }
    let (rest, summary) = client.finish().unwrap();
    got.extend(rest);
    assert_eq!(summary.consumed, text.len() as u64);
    assert_eq!(faults::counts().swap_crashes, 1, "the swap crash fired");
    assert!(srv.metrics().worker_restarts >= 1, "supervisor respawned");
    assert!(summary.reconnects >= 1, "client resumed");

    // Per-epoch oracles. Canonical ids are first-commit order, so they
    // agree across epochs: he=0, she=1, his=2, hers=3, ush=4.
    let ctx = Ctx::seq();
    let d1 = dict();
    let all_pats: Vec<Vec<u32>> = seed_pats
        .iter()
        .map(|p| to_symbols(p))
        .chain([to_symbols("ush")])
        .collect();
    let d2 = Arc::new(StaticMatcher::build(&ctx, &all_pats).unwrap());
    let oracle1 = oracle(&d1, &text);
    let oracle2 = oracle(&d2, &text);
    let mut delivered: Vec<(u64, u32)> = got.iter().map(|m| (m.start, m.pat)).collect();
    delivered.sort_unstable();
    let dup = delivered.windows(2).find(|w| w[0] == w[1]);
    assert_eq!(dup, None, "exactly-once broken");
    assert!(
        oracle1.iter().all(|m| delivered.binary_search(m).is_ok()),
        "an epoch-1 match was lost"
    );
    assert!(
        delivered.iter().all(|m| oracle2.binary_search(m).is_ok()),
        "delivered a match outside every committed epoch"
    );
    assert!(
        delivered.iter().any(|&(_, p)| p == 4),
        "post-swap chunks must match the newly committed pattern"
    );
    srv.shutdown();
    std::fs::remove_dir_all(&log_dir).ok();
}

#[test]
fn chunk_panic_fails_one_session_not_the_worker() {
    let _g = chaos();
    let svc = ShardedService::start(
        dict(),
        ServiceConfig {
            workers: 1,
            ..Default::default()
        },
    );
    faults::install(FaultConfig {
        worker_panic_every: 1,
        worker_panic_max: 1,
        ..Default::default()
    });
    let doomed = svc.open();
    doomed.push(to_symbols("ushers")).unwrap();
    let (_, summary) = doomed.close();
    assert!(
        summary.is_none(),
        "failed session must not report a summary"
    );
    // Budget spent: the same worker keeps serving other sessions.
    let healthy = svc.open();
    healthy.push(to_symbols("ushers")).unwrap();
    let (matches, summary) = healthy.close();
    assert_eq!(matches.len(), 3);
    assert_eq!(summary.unwrap().consumed, 6);
    let g = svc.metrics();
    assert_eq!(
        g.worker_restarts, 0,
        "chunk panic must not crash the worker"
    );
    assert_eq!(g.sessions_failed, 1);
    assert_eq!(g.sessions_opened, 2);
    assert_eq!(g.sessions_closed, 2);
    assert_eq!(faults::counts().worker_panics, 1);
    svc.shutdown();
}

#[test]
fn loop_crash_respawns_worker_and_fails_in_flight() {
    let _g = chaos();
    let svc = ShardedService::start(
        dict(),
        ServiceConfig {
            workers: 1,
            ..Default::default()
        },
    );
    faults::install(FaultConfig {
        worker_crash_every: 1,
        worker_crash_max: 1,
        ..Default::default()
    });
    let in_flight = svc.open();
    in_flight.push(to_symbols("ushers")).unwrap();
    let (_, summary) = in_flight.close();
    assert!(summary.is_none(), "in-flight session dies with the worker");
    // The supervisor respawned the loop in the same thread: new sessions
    // on this shard work.
    let fresh = svc.open();
    fresh.push(to_symbols("ushers")).unwrap();
    let (matches, summary) = fresh.close();
    assert_eq!(matches.len(), 3);
    assert_eq!(summary.unwrap().consumed, 6);
    let g = svc.metrics();
    assert_eq!(g.worker_restarts, 1);
    assert_eq!(g.sessions_failed, 1);
    assert_eq!(g.sessions_opened, 2);
    assert_eq!(g.sessions_closed, 2);
    assert_eq!(faults::counts().worker_crashes, 1);
    svc.shutdown();
}

#[test]
fn exactly_once_under_worker_panics() {
    let _g = chaos();
    let d = dict();
    let srv = server(Arc::clone(&d), 2);
    let text = gen_text(11, 20_000);
    faults::install(FaultConfig {
        seed: 1,
        worker_panic_every: 40,
        worker_panic_max: 3,
        ..Default::default()
    });
    let reconnects = assert_exactly_once(&srv, &d, &text, 100);
    assert!(reconnects >= 1, "panics should have forced a resume");
    assert!(faults::counts().worker_panics >= 1);
    faults::clear();
    // Post-fault: the same server serves a clean session.
    assert_eq!(assert_exactly_once(&srv, &d, &text, 500), 0);
    srv.shutdown();
}

#[test]
fn exactly_once_under_worker_crashes() {
    let _g = chaos();
    let d = dict();
    let srv = server(Arc::clone(&d), 2);
    let text = gen_text(13, 20_000);
    faults::install(FaultConfig {
        seed: 2,
        worker_crash_every: 80,
        worker_crash_max: 2,
        ..Default::default()
    });
    let reconnects = assert_exactly_once(&srv, &d, &text, 100);
    assert!(reconnects >= 1, "crashes should have forced a resume");
    assert!(srv.metrics().worker_restarts >= 1);
    faults::clear();
    assert_eq!(assert_exactly_once(&srv, &d, &text, 500), 0);
    srv.shutdown();
}

#[test]
fn exactly_once_under_connection_resets() {
    let _g = chaos();
    let d = dict();
    let srv = server(Arc::clone(&d), 2);
    let text = gen_text(17, 20_000);
    faults::install(FaultConfig {
        seed: 3,
        conn_reset_every: 60,
        conn_reset_max: 3,
        ..Default::default()
    });
    let reconnects = assert_exactly_once(&srv, &d, &text, 100);
    assert!(reconnects >= 1, "resets should have forced a reconnect");
    assert!(faults::counts().conn_resets >= 1);
    faults::clear();
    assert_eq!(assert_exactly_once(&srv, &d, &text, 500), 0);
    srv.shutdown();
}

#[test]
fn exactly_once_under_stalls() {
    let _g = chaos();
    let d = dict();
    let srv = server(Arc::clone(&d), 2);
    let text = gen_text(19, 8_000);
    faults::install(FaultConfig {
        seed: 4,
        read_stall_every: 25,
        read_stall_ms: 3,
        queue_stall_every: 25,
        queue_stall_ms: 3,
        ..Default::default()
    });
    // Stalls slow things down but must not lose, duplicate, or reorder
    // correctness — and must not deadlock the bounded queues.
    assert_exactly_once(&srv, &d, &text, 100);
    let counts = faults::counts();
    assert!(counts.read_stalls >= 1 && counts.queue_stalls >= 1);
    srv.shutdown();
}

#[test]
fn accept_errors_back_off_and_recover() {
    let _g = chaos();
    let d = dict();
    // Install before bind so the accept loop sees faults from its first
    // pass (the hook also fires on idle passes; the budget caps it).
    faults::install(FaultConfig {
        accept_error_every: 1,
        accept_error_max: 5,
        ..Default::default()
    });
    let srv = server(Arc::clone(&d), 2);
    let text = gen_text(23, 4_000);
    // The client's own retry loop rides out the synthetic accept failures.
    assert_exactly_once(&srv, &d, &text, 200);
    assert!(faults::counts().accept_errors >= 1);
    assert!(
        srv.metrics().accept_retries >= 1,
        "accept loop must count survived errors"
    );
    srv.shutdown();
}
