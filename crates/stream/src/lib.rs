//! # pdm-stream — streaming ingest + sharded matching service
//!
//! The paper's matcher ([`pdm_core::static1d::StaticMatcher`]) is an
//! *offline* algorithm: it takes the whole text at once. This crate layers
//! an *online* engine on top of the same frozen tables:
//!
//! * [`StreamMatcher`] — a per-stream cursor that consumes the text in
//!   arbitrary-size chunks and reports every occurrence **exactly once**,
//!   with absolute stream offsets, including occurrences that span chunk
//!   boundaries. It carries the last `m − 1` symbols (for `m` the longest
//!   pattern) across calls; see [`stream`] for the exactly-once argument.
//! * [`ShardedService`] — many concurrent sessions over one shared,
//!   immutable dictionary (`Arc<StaticMatcher>`). Chunks are scheduled onto
//!   worker shards through *bounded* channels, so a slow consumer exerts
//!   backpressure (callers block, or get `WouldBlock` via
//!   [`Session::try_push`]) instead of growing unbounded queues.
//! * [`server`] — a minimal length-prefixed TCP byte protocol
//!   (std-only) exposing the service: `pdm serve --dict words.txt --port N`.
//!   Fault-tolerant: supervised shard workers, accept-loop backoff,
//!   connection caps with load shedding, read timeouts, and graceful
//!   drain on shutdown.
//! * [`client`] — [`RetryingClient`], a reconnecting client that resumes
//!   the stream after connection loss and still delivers every match
//!   exactly once (see its module docs for the argument).
//! * [`metrics`] — per-session and global counters (chunks, bytes,
//!   matches, queue depth, stalls, and degradation events: shed
//!   connections, timeouts, worker restarts, failed sessions, …).
//! * [`faults`] — deterministic fault injection behind the
//!   `fault-injection` cargo feature (no-op stubs otherwise), driving the
//!   chaos test suite.
//! * [`admin`] — live dictionary updates: a versioned server
//!   (`Server::bind_versioned`) wraps a `pdm_dict::DictStore` in a
//!   [`DictAdmin`], accepts `DICT_ADD`/`DICT_REMOVE`/`DICT_COMMIT` frames
//!   while sessions stream, and publishes each commit as a new epoch that
//!   sessions adopt at chunk boundaries (matches are exact w.r.t. the
//!   epoch their chunk started in; see `DESIGN.md` §10).
//!
//! The dictionary side stays exactly the paper's machinery; this crate
//! never inspects the tables beyond the public `StaticMatcher` /
//! `pdm_dict::Snapshot` APIs.

pub mod admin;
pub mod client;
pub mod faults;
pub mod metrics;
pub mod proto;
pub mod reactor;
pub mod server;
pub mod service;
pub mod stream;

pub use admin::DictAdmin;
pub use client::{ClientStats, ClientSummary, RetryConfig, RetryingClient};
pub use metrics::{GlobalMetrics, GlobalSnapshot, SessionCounters, SessionSnapshot};
pub use server::{ServeMode, Server, ServerConfig};
pub use service::{
    Event, PushError, ServiceConfig, Session, SessionNotify, SessionOptions, SessionSummary,
    ShardedService, TryPushError,
};
pub use stream::{StreamDict, StreamMatch, StreamMatcher};
