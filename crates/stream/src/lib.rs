//! # pdm-stream — streaming ingest + sharded matching service
//!
//! The paper's matcher ([`pdm_core::static1d::StaticMatcher`]) is an
//! *offline* algorithm: it takes the whole text at once. This crate layers
//! an *online* engine on top of the same frozen tables:
//!
//! * [`StreamMatcher`] — a per-stream cursor that consumes the text in
//!   arbitrary-size chunks and reports every occurrence **exactly once**,
//!   with absolute stream offsets, including occurrences that span chunk
//!   boundaries. It carries the last `m − 1` symbols (for `m` the longest
//!   pattern) across calls; see [`stream`] for the exactly-once argument.
//! * [`ShardedService`] — many concurrent sessions over one shared,
//!   immutable dictionary (`Arc<StaticMatcher>`). Chunks are scheduled onto
//!   worker shards through *bounded* channels, so a slow consumer exerts
//!   backpressure (callers block, or get `WouldBlock` via
//!   [`Session::try_push`]) instead of growing unbounded queues.
//! * [`server`] — a minimal length-prefixed TCP byte protocol
//!   (std-only) exposing the service: `pdm serve --dict words.txt --port N`.
//! * [`metrics`] — per-session and global counters (chunks, bytes,
//!   matches, queue depth, stalls).
//!
//! The dictionary side stays exactly the paper's machinery; this crate
//! never inspects the tables beyond the public `StaticMatcher` API.

pub mod metrics;
pub mod proto;
pub mod server;
pub mod service;
pub mod stream;

pub use metrics::{GlobalMetrics, GlobalSnapshot, SessionCounters, SessionSnapshot};
pub use server::{Server, ServerConfig};
pub use service::{
    Event, PushError, ServiceConfig, Session, SessionSummary, ShardedService, TryPushError,
};
pub use stream::{StreamMatch, StreamMatcher};
