//! TCP front-end: one connection = one [`Session`](crate::Session).
//!
//! The accept loop and per-connection reader/writer threads use only
//! `std::net`. Frames are defined in [`crate::proto`]. Backpressure
//! composes end to end: a full shard queue blocks the connection's reader
//! thread, which stops reading the socket, which fills the kernel buffer,
//! which eventually blocks the remote sender.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pdm_core::static1d::StaticMatcher;

use crate::proto::{
    encode_match, encode_summary, write_frame, TAG_CHUNK, TAG_CLOSE, TAG_ERROR, TAG_MATCH,
    TAG_SUMMARY,
};
use crate::service::{Event, ServiceConfig, ShardedService};

/// Server knobs: service tuning plus socket behaviour.
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    pub service: ServiceConfig,
}

/// A running `pdm serve` instance. Bind with [`Server::bind`]; stop with
/// [`Server::shutdown`].
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    service: Arc<ShardedService>,
}

impl Server {
    /// Bind a listener (use port 0 for an ephemeral port) and start
    /// accepting connections on a background thread.
    pub fn bind(
        addr: impl ToSocketAddrs,
        dict: Arc<StaticMatcher>,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept so the loop can observe the stop flag.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::new(ShardedService::start(dict, cfg.service));
        let accept = {
            let stop = Arc::clone(&stop);
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("pdm-accept".into())
                .spawn(move || accept_loop(listener, stop, service))
                .expect("spawn accept thread")
        };
        Ok(Server {
            local_addr,
            stop,
            accept: Some(accept),
            service,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Service-wide metrics (chunks, bytes, matches, queue depth, stalls).
    pub fn metrics(&self) -> crate::metrics::GlobalSnapshot {
        self.service.metrics()
    }

    /// Stop accepting and join the accept thread. Connections already in
    /// flight run to completion on their own threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Block on the accept thread (used by `pdm serve`, which runs until
    /// killed).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>, service: Arc<ShardedService>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((sock, _peer)) => {
                let service = Arc::clone(&service);
                let _ = std::thread::Builder::new()
                    .name("pdm-conn".into())
                    .spawn(move || {
                        let _ = handle_conn(sock, &service);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn handle_conn(sock: TcpStream, service: &ShardedService) -> io::Result<()> {
    sock.set_nodelay(true).ok();
    let mut session = service.open();
    let events = session.events_handle();

    // Writer half: forward match/summary events to the socket as they
    // arrive, concurrently with the reader half below.
    let writer_sock = sock.try_clone()?;
    let writer = std::thread::Builder::new()
        .name("pdm-conn-writer".into())
        .spawn(move || -> io::Result<()> {
            let mut w = BufWriter::new(writer_sock);
            while let Ok(ev) = events.recv() {
                match ev {
                    Event::Matches(batch) => {
                        for m in &batch {
                            write_frame(&mut w, TAG_MATCH, &encode_match(m))?;
                        }
                        w.flush()?;
                    }
                    Event::Closed(summary) => {
                        write_frame(&mut w, TAG_SUMMARY, &encode_summary(&summary))?;
                        w.flush()?;
                        break;
                    }
                }
            }
            Ok(())
        })
        .expect("spawn connection writer");

    // Reader half: frames in, chunks to the service. Session::push blocks
    // on a full shard queue — backpressure reaches the socket naturally.
    let mut r = BufReader::new(sock.try_clone()?);
    let result: io::Result<()> = (|| {
        loop {
            match crate::proto::read_frame(&mut r)? {
                Some((TAG_CHUNK, payload)) => {
                    let syms: Vec<u32> = payload.iter().map(|&b| b as u32).collect();
                    if session.push(syms).is_err() {
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "service shut down",
                        ));
                    }
                }
                Some((TAG_CLOSE, _)) | None => {
                    // Clean close (or EOF treated as close): the writer
                    // exits once it forwards the summary.
                    session.finish();
                    return Ok(());
                }
                Some((tag, _)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected client frame tag {tag:#x}"),
                    ));
                }
            }
        }
    })();

    if let Err(ref e) = result {
        // Best-effort error frame, then drop the connection.
        let mut w = sock.try_clone()?;
        let _ = write_frame(&mut w, TAG_ERROR, e.to_string().as_bytes());
        session.finish();
    }
    let _ = writer.join();
    result
}
