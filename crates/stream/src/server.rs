//! TCP front-end: one connection = one [`Session`](crate::Session).
//!
//! The accept loop and per-connection reader/writer threads use only
//! `std::net`. Frames are defined in [`crate::proto`]. Backpressure
//! composes end to end: a full shard queue blocks the connection's reader
//! thread, which stops reading the socket, which fills the kernel buffer,
//! which eventually blocks the remote sender.
//!
//! ## Failure model
//!
//! * Transient `accept()` errors (EMFILE, ECONNABORTED, …) are retried
//!   with capped exponential backoff — only the stop flag ends the loop.
//! * Above [`ServerConfig::max_conns`] live connections, new arrivals are
//!   load-shed at accept time: one best-effort `TAG_ERROR "busy"` frame,
//!   then close. Shed work is counted, never silently dropped.
//! * [`ServerConfig::read_timeout`] bounds how long a connection may sit
//!   idle mid-stream; on expiry the session is closed with a `TAG_ERROR`.
//! * [`Server::shutdown`] drains gracefully: stop accepting, wait up to
//!   [`ServerConfig::drain_deadline`] for in-flight sessions to reach
//!   their summaries, then force-close the stragglers.
//!
//! All error frames are routed through the connection's writer thread
//! (via a pending-error slot), so a failure can never interleave bytes
//! with a concurrently written match frame.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pdm_core::static1d::StaticMatcher;
use pdm_dict::DictStore;

use crate::admin::DictAdmin;
use crate::faults::{self, ConnFault};
use crate::proto::{
    decode_hello, encode_ack, encode_dict_info, encode_epoch, encode_hello_ack, encode_match,
    encode_stats, encode_summary, write_frame, EpochChange, TAG_ACK, TAG_CHUNK, TAG_CLOSE,
    TAG_DICT_ADD, TAG_DICT_COMMIT, TAG_DICT_ERR, TAG_DICT_INFO, TAG_DICT_INFO_RESP, TAG_DICT_OK,
    TAG_DICT_REMOVE, TAG_EPOCH, TAG_ERROR, TAG_HELLO, TAG_HELLO_ACK, TAG_MATCH, TAG_STATS,
    TAG_STATS_RESP, TAG_SUMMARY,
};
use crate::service::{Event, ServiceConfig, SessionOptions, ShardedService};

/// How the server turns sockets into sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Readiness-driven reactor pool ([`crate::reactor`]): a fixed set of
    /// event-loop threads own all connections. Scales to tens of
    /// thousands of concurrent sessions. The default.
    Reactor,
    /// Two OS threads (reader + writer) per connection. Simple, but
    /// thread count scales with connections.
    Threaded,
}

impl ServeMode {
    /// Default mode, overridable via `PDM_SERVE_MODE=threaded|reactor`
    /// (used by CI to run the same suites through both serving tiers).
    pub fn from_env() -> ServeMode {
        match std::env::var("PDM_SERVE_MODE").as_deref() {
            Ok("threaded") => ServeMode::Threaded,
            _ => ServeMode::Reactor,
        }
    }
}

impl Default for ServeMode {
    fn default() -> Self {
        ServeMode::from_env()
    }
}

/// Server knobs: service tuning plus socket/lifecycle behaviour.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    pub service: ServiceConfig,
    /// Per-connection read timeout: a connection that sends nothing for
    /// this long mid-stream is closed with a `TAG_ERROR`. `None` = never.
    pub read_timeout: Option<Duration>,
    /// Live-connection cap; arrivals beyond it are load-shed at accept
    /// time with a busy `TAG_ERROR`. 0 = unlimited.
    pub max_conns: usize,
    /// How long [`Server::shutdown`] waits for in-flight sessions to reach
    /// their summaries before force-closing their connections.
    pub drain_deadline: Duration,
    /// Cap for the accept loop's exponential error backoff.
    pub accept_backoff_max: Duration,
    /// Serving tier (defaults to [`ServeMode::Reactor`], or the
    /// `PDM_SERVE_MODE` environment override).
    pub serve_mode: ServeMode,
    /// Reactor thread count in [`ServeMode::Reactor`]; 0 = one per
    /// available core (capped at 8).
    pub reactors: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            service: ServiceConfig::default(),
            read_timeout: None,
            max_conns: 0,
            drain_deadline: Duration::from_secs(5),
            accept_backoff_max: Duration::from_millis(100),
            serve_mode: ServeMode::default(),
            reactors: 0,
        }
    }
}

pub(crate) type ConnRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

fn default_reactors() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// A running `pdm serve` instance. Bind with [`Server::bind`]; stop with
/// [`Server::shutdown`].
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    reactors: Option<crate::reactor::ReactorPool>,
    service: Arc<ShardedService>,
    admin: Option<Arc<DictAdmin>>,
    live: Arc<AtomicUsize>,
    conns: ConnRegistry,
    drain_deadline: Duration,
}

impl Server {
    /// Bind a listener (use port 0 for an ephemeral port) and start
    /// accepting connections on a background thread. The dictionary is
    /// fixed; `DICT_*` admin frames are rejected.
    pub fn bind(
        addr: impl ToSocketAddrs,
        dict: Arc<StaticMatcher>,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let service = Arc::new(ShardedService::start(dict, cfg.service.clone()));
        Self::bind_inner(addr, service, None, cfg)
    }

    /// Bind with a live-updatable dictionary: the store's committed
    /// dictionary is published as the initial epoch, and `DICT_*` admin
    /// frames stage, commit, and inspect updates while sessions stream.
    pub fn bind_versioned(
        addr: impl ToSocketAddrs,
        store: DictStore,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let admin = DictAdmin::new(store, cfg.service.exec.clone())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let service = Arc::new(ShardedService::start_versioned(
            admin.handle(),
            cfg.service.clone(),
        ));
        Self::bind_inner(addr, service, Some(admin), cfg)
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        service: Arc<ShardedService>,
        admin: Option<Arc<DictAdmin>>,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept so the loop can observe the stop flag.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));
        let conns: ConnRegistry = Arc::new(Mutex::new(HashMap::new()));
        let mut accept = None;
        let mut reactors = None;
        match cfg.serve_mode {
            ServeMode::Threaded => {
                let stop = Arc::clone(&stop);
                let service = Arc::clone(&service);
                let admin = admin.clone();
                let live = Arc::clone(&live);
                let conns = Arc::clone(&conns);
                let cfg = cfg.clone();
                accept = Some(
                    std::thread::Builder::new()
                        .name("pdm-accept".into())
                        .spawn(move || {
                            accept_loop(listener, stop, service, admin, cfg, live, conns)
                        })
                        .expect("spawn accept thread"),
                );
            }
            ServeMode::Reactor => {
                let n = if cfg.reactors > 0 {
                    cfg.reactors
                } else {
                    default_reactors()
                };
                reactors = Some(crate::reactor::ReactorPool::spawn(
                    listener,
                    Arc::clone(&service),
                    admin.clone(),
                    cfg.clone(),
                    Arc::clone(&stop),
                    Arc::clone(&live),
                    Arc::clone(&conns),
                    n,
                )?);
            }
        }
        Ok(Server {
            local_addr,
            stop,
            accept,
            reactors,
            service,
            admin,
            live,
            conns,
            drain_deadline: cfg.drain_deadline,
        })
    }

    /// The dictionary admin, when bound with [`Server::bind_versioned`].
    pub fn dict_admin(&self) -> Option<&Arc<DictAdmin>> {
        self.admin.as_ref()
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Service-wide metrics (chunks, bytes, matches, queue depth, stalls,
    /// and the degradation counters).
    pub fn metrics(&self) -> crate::metrics::GlobalSnapshot {
        self.service.metrics()
    }

    /// Live connection count (gauge).
    pub fn live_conns(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop accepting, wait up to the configured
    /// `drain_deadline` for in-flight connections to finish their sessions
    /// (a client that already sent `TAG_CLOSE` still receives its
    /// summary), then force-close any stragglers.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(p) = self.reactors.as_ref() {
            p.wake_all();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + self.drain_deadline;
        while self.live.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        if self.live.load(Ordering::SeqCst) > 0 {
            // Deadline expired: force-close what's left. Readers (or
            // reactors) observe EOF/reset, close their sessions, and exit.
            for (_, sock) in self.conns.lock().unwrap().iter() {
                self.service.global_metrics().drain_force_closed();
                let _ = sock.shutdown(Shutdown::Both);
            }
            let grace = Instant::now() + Duration::from_secs(1);
            while self.live.load(Ordering::SeqCst) > 0 && Instant::now() < grace {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        if let Some(mut p) = self.reactors.take() {
            p.halt_and_join();
        }
    }

    /// Block on the serving threads (used by `pdm serve`, which runs
    /// until killed).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(mut p) = self.reactors.take() {
            p.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(mut p) = self.reactors.take() {
            p.halt_and_join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    service: Arc<ShardedService>,
    admin: Option<Arc<DictAdmin>>,
    cfg: ServerConfig,
    live: Arc<AtomicUsize>,
    conns: ConnRegistry,
) {
    let base = Duration::from_millis(1);
    let mut backoff = base;
    let mut next_conn_id = 0u64;
    while !stop.load(Ordering::SeqCst) {
        let accepted: io::Result<TcpStream> = match faults::hook_accept() {
            Some(e) => Err(e),
            None => listener.accept().map(|(sock, _peer)| sock),
        };
        match accepted {
            Ok(sock) => {
                backoff = base;
                if cfg.max_conns > 0 && live.load(Ordering::SeqCst) >= cfg.max_conns {
                    service.global_metrics().conn_shed();
                    shed(sock);
                    continue;
                }
                live.fetch_add(1, Ordering::SeqCst);
                let id = next_conn_id;
                next_conn_id += 1;
                if let Ok(clone) = sock.try_clone() {
                    conns.lock().unwrap().insert(id, clone);
                }
                let conn_service = Arc::clone(&service);
                let conn_admin = admin.clone();
                let conn_live = Arc::clone(&live);
                let conn_conns = Arc::clone(&conns);
                let read_timeout = cfg.read_timeout;
                let spawned =
                    std::thread::Builder::new()
                        .name("pdm-conn".into())
                        .spawn(move || {
                            let _ = handle_conn(sock, &conn_service, conn_admin, read_timeout);
                            conn_conns.lock().unwrap().remove(&id);
                            conn_live.fetch_sub(1, Ordering::SeqCst);
                        });
                if spawned.is_err() {
                    // Could not spawn (resource exhaustion): undo bookkeeping.
                    conns.lock().unwrap().remove(&id);
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                backoff = base;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept failure (EMFILE, ECONNABORTED, …): back
                // off and retry. Only the stop flag ends this loop — a
                // burst of errors must never turn into a permanent outage.
                service.global_metrics().accept_retry();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(cfg.accept_backoff_max);
            }
        }
    }
}

/// Load-shed one connection: tell the client why, then close.
pub(crate) fn shed(sock: TcpStream) {
    let mut w = &sock;
    let _ = write_frame(
        &mut w,
        TAG_ERROR,
        b"busy: connection limit reached, retry later",
    );
    let _ = sock.shutdown(Shutdown::Both);
}

fn handle_conn(
    sock: TcpStream,
    service: &ShardedService,
    admin: Option<Arc<DictAdmin>>,
    read_timeout: Option<Duration>,
) -> io::Result<()> {
    sock.set_nodelay(true).ok();
    if let Some(d) = read_timeout {
        sock.set_read_timeout(Some(d)).ok();
    }
    let global = Arc::clone(service.global_metrics());
    let mut r = BufReader::new(sock.try_clone()?);

    // Optional handshake: a TAG_HELLO first frame opts into a resume
    // offset and periodic acks. Anything else is treated as the first
    // regular frame of a plain (PR-1 protocol) session.
    let mut opts = SessionOptions::default();
    let mut ack_every: u64 = 0;
    let mut hello = false;
    let mut first_frame: Option<Option<(u8, Vec<u8>)>> = None;
    match crate::proto::read_frame(&mut r) {
        Ok(Some((TAG_HELLO, payload))) => match decode_hello(&payload) {
            Some(h) => {
                opts.start_offset = h.resume_offset;
                opts.progress = h.ack_every > 0;
                ack_every = h.ack_every as u64;
                hello = true;
            }
            None => {
                let mut w = sock.try_clone()?;
                let _ = write_frame(&mut w, TAG_ERROR, b"malformed hello payload");
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "malformed hello payload",
                ));
            }
        },
        Ok(other) => first_frame = Some(other),
        Err(e) => {
            // No session was opened yet; classify, report, drop.
            record_conn_error(&global, &e);
            let mut w = sock.try_clone()?;
            let _ = write_frame(&mut w, TAG_ERROR, conn_error_message(&e).as_bytes());
            return Err(e);
        }
    }

    let mut session = service.open_with(opts);
    let events = session.events_handle();
    // A reader-side failure parks its message here; the writer emits it as
    // the terminal TAG_ERROR frame (instead of a summary), so error frames
    // never interleave with concurrently written match frames.
    let pending_err: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));

    // Admin replies are produced on the reader thread but written by the
    // writer (below), so they never interleave bytes with match frames.
    let (admin_tx, admin_rx) = crossbeam::channel::unbounded::<(u8, Vec<u8>)>();

    // Writer half: forward match/ack/summary/epoch events and admin
    // replies to the socket as they arrive, concurrently with the reader
    // half below.
    let writer_sock = sock.try_clone()?;
    let max_pat = service.current().max_pattern_len() as u32;
    let writer_pending = Arc::clone(&pending_err);
    let writer = std::thread::Builder::new()
        .name("pdm-conn-writer".into())
        .spawn(move || -> io::Result<()> {
            let mut w = BufWriter::new(writer_sock);
            if hello {
                write_frame(&mut w, TAG_HELLO_ACK, &encode_hello_ack(max_pat))?;
                w.flush()?;
            }
            let mut chunks_seen = 0u64;
            loop {
                // Multiplex session events with admin replies: drain any
                // queued replies, then wait briefly for an event so a
                // reply never sits behind an idle event channel for more
                // than the poll interval.
                flush_admin_replies(&admin_rx, &mut w)?;
                let ev = match events.recv_timeout(Duration::from_millis(25)) {
                    Ok(ev) => ev,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        flush_admin_replies(&admin_rx, &mut w)?;
                        break;
                    }
                };
                match ev {
                    Event::Matches(batch) => {
                        for m in &batch {
                            write_frame(&mut w, TAG_MATCH, &encode_match(m))?;
                        }
                        w.flush()?;
                    }
                    Event::Progress(consumed) => {
                        chunks_seen += 1;
                        if ack_every > 0 && chunks_seen.is_multiple_of(ack_every) {
                            write_frame(&mut w, TAG_ACK, &encode_ack(consumed))?;
                            w.flush()?;
                        }
                    }
                    Event::Epoch {
                        epoch,
                        max_pattern_len,
                    } => {
                        write_frame(
                            &mut w,
                            TAG_EPOCH,
                            &encode_epoch(&EpochChange {
                                epoch,
                                max_pattern_len,
                            }),
                        )?;
                        w.flush()?;
                    }
                    Event::Failed(msg) => {
                        flush_admin_replies(&admin_rx, &mut w)?;
                        write_frame(&mut w, TAG_ERROR, msg.as_bytes())?;
                        w.flush()?;
                        break;
                    }
                    Event::Closed(summary) => {
                        // Terminal events only follow the reader's finish,
                        // so every admin reply is already queued — emit
                        // them before the final frame.
                        flush_admin_replies(&admin_rx, &mut w)?;
                        if let Some(msg) = writer_pending.lock().unwrap().take() {
                            write_frame(&mut w, TAG_ERROR, msg.as_bytes())?;
                        } else {
                            write_frame(&mut w, TAG_SUMMARY, &encode_summary(&summary))?;
                        }
                        w.flush()?;
                        break;
                    }
                }
            }
            Ok(())
        })
        .expect("spawn connection writer");

    // Reader half: frames in, chunks to the service. Session::push blocks
    // on a full shard queue — backpressure reaches the socket naturally.
    let result: io::Result<()> = (|| {
        loop {
            let frame = match first_frame.take() {
                Some(f) => f,
                None => {
                    match faults::hook_conn_frame() {
                        ConnFault::None => {}
                        ConnFault::Stall(d) => std::thread::sleep(d),
                        ConnFault::Reset => {
                            // Simulate a peer/middlebox reset: kill the
                            // socket outright, no polite error frame.
                            let _ = sock.shutdown(Shutdown::Both);
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionReset,
                                "injected fault: connection reset",
                            ));
                        }
                    }
                    crate::proto::read_frame(&mut r)?
                }
            };
            match frame {
                Some((TAG_CHUNK, payload)) => {
                    let syms: Vec<u32> = payload.iter().map(|&b| b as u32).collect();
                    if session.push(syms).is_err() {
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "service shut down",
                        ));
                    }
                }
                Some((TAG_CLOSE, _)) | None => {
                    // Clean close (or EOF at a frame boundary): the writer
                    // exits once it forwards the summary.
                    return Ok(());
                }
                Some((
                    tag @ (TAG_DICT_ADD | TAG_DICT_REMOVE | TAG_DICT_COMMIT | TAG_DICT_INFO),
                    payload,
                )) => {
                    let reply = handle_dict_frame(admin.as_deref(), &global, tag, &payload);
                    if admin_tx.send(reply).is_err() {
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "writer gone before admin reply",
                        ));
                    }
                }
                Some((TAG_STATS, _)) => {
                    // Service-wide metrics snapshot; replies through the
                    // writer like a dict frame so it never interleaves.
                    let reply = (TAG_STATS_RESP, encode_stats(&global.snapshot()));
                    if admin_tx.send(reply).is_err() {
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "writer gone before stats reply",
                        ));
                    }
                }
                Some((TAG_HELLO, _)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "hello is only valid as the first frame",
                    ));
                }
                Some((tag, _)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected client frame tag {tag:#x}"),
                    ));
                }
            }
        }
    })();

    if let Err(ref e) = result {
        record_conn_error(&global, e);
        *pending_err.lock().unwrap() = Some(conn_error_message(e));
    }
    // Close the session on every path; the worker then emits Closed and
    // the writer terminates the connection with either the summary or the
    // pending error frame.
    session.finish();
    let _ = writer.join();
    result
}

/// Drain queued admin replies to the socket (used before terminal frames).
fn flush_admin_replies(
    admin_rx: &crossbeam::channel::Receiver<(u8, Vec<u8>)>,
    w: &mut impl Write,
) -> io::Result<()> {
    let mut wrote = false;
    while let Ok((tag, payload)) = admin_rx.try_recv() {
        write_frame(w, tag, &payload)?;
        wrote = true;
    }
    if wrote {
        w.flush()?;
    }
    Ok(())
}

/// Execute one `DICT_*` admin frame, returning the reply frame.
pub(crate) fn handle_dict_frame(
    admin: Option<&DictAdmin>,
    global: &crate::metrics::GlobalMetrics,
    tag: u8,
    payload: &[u8],
) -> (u8, Vec<u8>) {
    let Some(admin) = admin else {
        return (
            TAG_DICT_ERR,
            b"dictionary is static; start the server with a dict log to enable live updates"
                .to_vec(),
        );
    };
    let pattern: Vec<u32> = payload.iter().map(|&b| u32::from(b)).collect();
    let result = match tag {
        TAG_DICT_ADD => admin.add(&pattern),
        TAG_DICT_REMOVE => admin.remove(&pattern),
        TAG_DICT_COMMIT => admin.commit(global).map(|out| out.epoch),
        TAG_DICT_INFO => {
            return (TAG_DICT_INFO_RESP, encode_dict_info(&admin.info()).to_vec());
        }
        _ => unreachable!("caller matched a dict tag"),
    };
    match result {
        Ok(epoch) => (TAG_DICT_OK, epoch.to_le_bytes().to_vec()),
        Err(e) => (TAG_DICT_ERR, e.to_string().into_bytes()),
    }
}

/// Count a connection-level failure in the right degradation bucket.
pub(crate) fn record_conn_error(global: &crate::metrics::GlobalMetrics, e: &io::Error) {
    match e.kind() {
        // set_read_timeout expiry surfaces as WouldBlock (unix) or
        // TimedOut (windows).
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => global.read_timeout(),
        io::ErrorKind::UnexpectedEof => global.truncated_frame(),
        _ => {}
    }
}

pub(crate) fn conn_error_message(e: &io::Error) -> String {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            "read timeout: closing idle connection".to_string()
        }
        _ => e.to_string(),
    }
}
