//! Reconnecting TCP client with exactly-once match delivery.
//!
//! [`RetryingClient`] wraps the `pdm serve` wire protocol with a retry
//! loop: when the connection drops (server restart, injected reset, worker
//! crash surfaced as `TAG_ERROR`), it reconnects with jittered exponential
//! backoff and **resumes** the stream so the caller still observes every
//! match exactly once, with its original absolute offset.
//!
//! ## Exactly-once across reconnects
//!
//! The protocol's `TAG_ACK { consumed }` frame guarantees that every match
//! whose *end* offset is ≤ `consumed` has already been written to the
//! connection (the worker emits matches before the progress event an ack
//! is derived from, and the writer preserves event order). The client
//! tracks the largest acked offset as its `frontier` and keeps a tail
//! buffer of every byte past `frontier − (m − 1)` (`m` = the dictionary's
//! longest pattern, learned from `TAG_HELLO_ACK`).
//!
//! On reconnect it sends `TAG_HELLO { resume_offset: R }` with
//! `R = max(tail_start, frontier − (m − 1))` and replays the tail from
//! `R`. Any match not yet delivered ends after `frontier`, hence starts at
//! or after `frontier − (m − 1) ≥ R`, hence lies wholly inside the
//! replayed bytes — the resumed session re-finds it at its original
//! offset. Matches that *were* delivered but not yet acked may be
//! re-found too; those are deduplicated against a map of delivered
//! matches with ends still above the frontier (pruned as acks advance).
//! So across any number of reconnects: no match lost, none duplicated.
//!
//! Matches may arrive out of order across a reconnect boundary; sort by
//! `(start, pat)` if order matters.

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::proto::{
    decode_ack, decode_epoch, decode_hello_ack, decode_match, decode_summary, encode_hello,
    read_frame, write_frame, Hello, MAX_FRAME, TAG_ACK, TAG_CHUNK, TAG_CLOSE, TAG_EPOCH, TAG_ERROR,
    TAG_HELLO, TAG_HELLO_ACK, TAG_MATCH, TAG_SUMMARY,
};
use crate::stream::StreamMatch;

const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
const SUMMARY_TIMEOUT: Duration = Duration::from_secs(10);
/// Hard cap on close→error→reconnect cycles in [`RetryingClient::finish`],
/// so a server that fails every session cannot loop us forever.
const MAX_CLOSE_CYCLES: u32 = 64;

/// Retry / resume tuning for [`RetryingClient`].
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Consecutive failed connection attempts before giving up (per
    /// reconnect episode, not per session).
    pub max_reconnects: u32,
    /// First backoff; doubles per attempt up to [`Self::max_backoff`].
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// Seed for backoff jitter (deterministic tests).
    pub seed: u64,
    /// Ask the server for a `TAG_ACK` every this many chunks (≥ 1; acks
    /// are what lets the client prune its replay tail).
    pub ack_every: u32,
    /// Replay chunk size when re-sending the tail after a reconnect.
    pub chunk_bytes: usize,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_reconnects: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            seed: 0x5eed,
            ack_every: 1,
            chunk_bytes: 64 * 1024,
        }
    }
}

/// Degradation counters for one client (cheap copies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Successful re-establishments after the initial connect.
    pub reconnects: u64,
    /// Bytes replayed through the resume path.
    pub resent_bytes: u64,
    /// Re-found matches dropped by exactly-once dedup.
    pub duplicates_dropped: u64,
    /// Dictionary epoch changes observed (`TAG_EPOCH` frames).
    pub epoch_changes: u64,
}

/// Final client-side accounting from [`RetryingClient::finish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientSummary {
    /// Absolute stream offset consumed by the (last) server session — equal
    /// to the total bytes sent, independent of how many reconnects happened.
    pub consumed: u64,
    /// Chunks the caller pushed (not counting replays).
    pub chunks: u64,
    /// Matches delivered to the caller (after dedup).
    pub matches: u64,
    pub reconnects: u64,
}

enum Incoming {
    Frame(u8, Vec<u8>),
    Eof,
    IoErr(io::Error),
}

/// One live connection: write half + a reader thread feeding a channel
/// (so [`RetryingClient::send`] can drain matches without blocking and the
/// bounded server queues can never write-write deadlock us).
struct Conn {
    sock: TcpStream,
    rx: mpsc::Receiver<Incoming>,
    _reader: JoinHandle<()>,
}

impl Conn {
    fn new(sock: TcpStream, read_half: TcpStream) -> Self {
        let (tx, rx) = mpsc::channel();
        let reader = std::thread::Builder::new()
            .name("pdm-client-reader".into())
            .spawn(move || {
                let mut r = BufReader::new(read_half);
                loop {
                    match read_frame(&mut r) {
                        Ok(Some((tag, p))) => {
                            if tx.send(Incoming::Frame(tag, p)).is_err() {
                                break;
                            }
                        }
                        Ok(None) => {
                            let _ = tx.send(Incoming::Eof);
                            break;
                        }
                        Err(e) => {
                            let _ = tx.send(Incoming::IoErr(e));
                            break;
                        }
                    }
                }
            })
            .expect("spawn client reader");
        Self {
            sock,
            rx,
            _reader: reader,
        }
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        // Unblocks the reader thread's clone of this socket too.
        let _ = self.sock.shutdown(Shutdown::Both);
    }
}

/// A streaming match client that survives connection loss.
///
/// ```no_run
/// use pdm_stream::client::{RetryConfig, RetryingClient};
///
/// let mut c = RetryingClient::connect("127.0.0.1:4870", RetryConfig::default())?;
/// let mut matches = c.send(b"ushers")?;
/// let (rest, summary) = c.finish()?;
/// matches.extend(rest);
/// assert_eq!(summary.consumed, 6);
/// # std::io::Result::Ok(())
/// ```
pub struct RetryingClient {
    addrs: Vec<SocketAddr>,
    cfg: RetryConfig,
    rng: StdRng,
    conn: Option<Conn>,
    connected_once: bool,
    /// Total bytes the caller has sent (absolute stream length so far).
    sent: u64,
    /// Largest server-acked offset: every match ending ≤ here is delivered.
    frontier: u64,
    /// Dictionary's longest pattern — from the handshake, then updated by
    /// every `TAG_EPOCH` frame, so the replay tail always covers the
    /// *current* epoch's `m − 1` carry.
    max_pat: u32,
    /// Last dictionary epoch announced by the server (0 until a
    /// `TAG_EPOCH` frame arrives; matches delivered after an epoch change
    /// were found against this epoch).
    epoch: u64,
    /// Replay buffer: stream bytes `[tail_start, sent)`.
    tail: Vec<u8>,
    tail_start: u64,
    /// Delivered matches whose end is still above the frontier, keyed by
    /// identity `(start, pat)` — the dedup set for re-found matches.
    recent: HashMap<(u64, u32), u64>,
    delivered: u64,
    chunks: u64,
    stats: ClientStats,
}

impl RetryingClient {
    /// Connect (retrying per `cfg` even on the initial attempt) and
    /// perform the resume handshake.
    pub fn connect(addr: impl ToSocketAddrs, cfg: RetryConfig) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "no addresses to connect to",
            ));
        }
        let mut c = Self {
            addrs,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            conn: None,
            connected_once: false,
            sent: 0,
            frontier: 0,
            max_pat: 0,
            epoch: 0,
            tail: Vec::new(),
            tail_start: 0,
            recent: HashMap::new(),
            delivered: 0,
            chunks: 0,
            stats: ClientStats::default(),
        };
        c.reconnect()?;
        Ok(c)
    }

    /// Client-side degradation counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Last dictionary epoch announced by the server (0 before any
    /// `TAG_EPOCH` frame).
    pub fn last_epoch(&self) -> u64 {
        self.epoch
    }

    /// Record a server-announced epoch change: the replay tail must now
    /// cover the **new** epoch's `m − 1` carry, so `max_pat` follows the
    /// epoch immediately (a shrink only lets *future* acks prune more).
    fn note_epoch(&mut self, payload: &[u8]) {
        if let Some(e) = decode_epoch(payload) {
            if e.epoch != self.epoch {
                self.epoch = e.epoch;
                self.stats.epoch_changes += 1;
            }
            self.max_pat = e.max_pattern_len;
        }
    }

    /// Send one chunk; returns any matches that have arrived so far
    /// (possibly from earlier chunks — delivery is pipelined). Transparent
    /// reconnect + replay on connection loss.
    pub fn send(&mut self, chunk: &[u8]) -> io::Result<Vec<StreamMatch>> {
        if chunk.len() as u64 > MAX_FRAME as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "chunk exceeds MAX_FRAME; split it",
            ));
        }
        self.chunks += 1;
        self.tail.extend_from_slice(chunk);
        self.sent += chunk.len() as u64;
        loop {
            match &self.conn {
                None => {
                    // Replays the tail, which includes this chunk.
                    self.reconnect()?;
                    break;
                }
                Some(conn) => {
                    if write_frame(&mut &conn.sock, TAG_CHUNK, chunk).is_ok() {
                        break;
                    }
                    self.conn = None;
                }
            }
        }
        let mut out = Vec::new();
        self.drain_incoming(&mut out);
        self.prune();
        Ok(out)
    }

    /// Close the stream and collect the remaining matches plus the final
    /// summary, reconnecting and replaying as needed until a server
    /// session runs to completion.
    pub fn finish(mut self) -> io::Result<(Vec<StreamMatch>, ClientSummary)> {
        let mut out = Vec::new();
        for _ in 0..MAX_CLOSE_CYCLES {
            if self.conn.is_none() {
                self.reconnect()?;
            }
            let conn = self.conn.as_ref().expect("just reconnected");
            if write_frame(&mut &conn.sock, TAG_CLOSE, b"").is_err() {
                self.conn = None;
                continue;
            }
            // Await the summary, delivering matches as they stream in.
            let summary = loop {
                let msg = match &self.conn {
                    Some(c) => c.rx.recv_timeout(SUMMARY_TIMEOUT),
                    None => break None,
                };
                match msg {
                    Ok(Incoming::Frame(tag, p)) => match tag {
                        TAG_MATCH => {
                            if let Some(m) = decode_match(&p) {
                                self.deliver(m, &mut out);
                            }
                        }
                        TAG_ACK => {
                            if let Some(a) = decode_ack(&p) {
                                self.frontier = self.frontier.max(a);
                            }
                        }
                        TAG_EPOCH => self.note_epoch(&p),
                        TAG_SUMMARY => break decode_summary(&p),
                        TAG_ERROR => break None,
                        _ => {}
                    },
                    Ok(Incoming::Eof) | Ok(Incoming::IoErr(_)) => break None,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "timed out waiting for session summary",
                        ));
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break None,
                }
            };
            match summary {
                Some(s) => {
                    return Ok((
                        out,
                        ClientSummary {
                            consumed: s.consumed,
                            chunks: self.chunks,
                            matches: self.delivered,
                            reconnects: self.stats.reconnects,
                        },
                    ));
                }
                None => self.conn = None, // failed session: resume and re-close
            }
        }
        Err(io::Error::other(
            "giving up: server kept failing the session during close",
        ))
    }

    /// `max(tail_start, frontier − (m − 1))`: the earliest offset a
    /// not-yet-delivered match can start at (see module docs).
    fn resume_offset(&self) -> u64 {
        let m1 = u64::from(self.max_pat.saturating_sub(1));
        self.tail_start.max(self.frontier.saturating_sub(m1))
    }

    /// Dial + handshake + tail replay; on success returns the live conn.
    fn establish(&mut self, addr_idx: usize) -> io::Result<Conn> {
        let addr = self.addrs[addr_idx % self.addrs.len()];
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true).ok();
        let resume = self.resume_offset();
        write_frame(
            &mut &sock,
            TAG_HELLO,
            &encode_hello(&Hello {
                resume_offset: resume,
                ack_every: self.cfg.ack_every.max(1),
            }),
        )?;
        let read_half = sock.try_clone()?;
        // Conn::drop closes the socket, so every early return below also
        // reaps the reader thread.
        let conn = Conn::new(sock, read_half);
        match conn.rx.recv_timeout(HANDSHAKE_TIMEOUT) {
            Ok(Incoming::Frame(TAG_HELLO_ACK, p)) => {
                self.max_pat = decode_hello_ack(&p).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed hello-ack")
                })?;
            }
            Ok(Incoming::Frame(TAG_ERROR, p)) => {
                // e.g. load-shed at the connection cap: "busy: …".
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    String::from_utf8_lossy(&p).into_owned(),
                ));
            }
            Ok(Incoming::Frame(..)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected frame before hello-ack",
                ));
            }
            Ok(Incoming::Eof) => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "connection closed during handshake",
                ));
            }
            Ok(Incoming::IoErr(e)) => return Err(e),
            Err(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "timed out waiting for hello-ack",
                ));
            }
        }
        // Replay everything from the resume point (includes any bytes the
        // caller pushed while we were disconnected).
        let from = (resume - self.tail_start) as usize;
        for piece in self.tail[from..].chunks(self.cfg.chunk_bytes.max(1)) {
            write_frame(&mut &conn.sock, TAG_CHUNK, piece)?;
            self.stats.resent_bytes += piece.len() as u64;
        }
        Ok(conn)
    }

    /// (Re-)establish the connection with exponential backoff + jitter.
    fn reconnect(&mut self) -> io::Result<()> {
        self.conn = None;
        let mut attempt: u32 = 0;
        loop {
            match self.establish(attempt as usize) {
                Ok(conn) => {
                    if self.connected_once {
                        self.stats.reconnects += 1;
                    } else {
                        self.connected_once = true;
                    }
                    self.conn = Some(conn);
                    return Ok(());
                }
                Err(e) => {
                    attempt += 1;
                    if attempt > self.cfg.max_reconnects {
                        return Err(e);
                    }
                    let exp = self
                        .cfg
                        .base_backoff
                        .saturating_mul(1u32 << (attempt - 1).min(16));
                    let capped = exp.min(self.cfg.max_backoff);
                    let half = (capped.as_millis() as u64 / 2).max(1);
                    let jitter = self.rng.gen_range(0..=half);
                    std::thread::sleep(Duration::from_millis(half + jitter));
                }
            }
        }
    }

    /// Deliver one decoded match unless exactly-once dedup rejects it.
    fn deliver(&mut self, m: StreamMatch, out: &mut Vec<StreamMatch>) {
        let end = m.start + u64::from(m.len);
        if end <= self.frontier {
            // Acked region: delivered before a reconnect, re-found after.
            self.stats.duplicates_dropped += 1;
            return;
        }
        if self.recent.insert((m.start, m.pat), end).is_some() {
            self.stats.duplicates_dropped += 1;
            return;
        }
        self.delivered += 1;
        out.push(m);
    }

    /// Pump frames the reader thread has queued, without blocking.
    fn drain_incoming(&mut self, out: &mut Vec<StreamMatch>) {
        let mut dead = false;
        loop {
            let msg = match &self.conn {
                Some(c) => c.rx.try_recv(),
                None => return,
            };
            match msg {
                Ok(Incoming::Frame(tag, p)) => match tag {
                    TAG_MATCH => {
                        if let Some(m) = decode_match(&p) {
                            self.deliver(m, out);
                        }
                    }
                    TAG_ACK => {
                        if let Some(a) = decode_ack(&p) {
                            self.frontier = self.frontier.max(a);
                        }
                    }
                    TAG_EPOCH => self.note_epoch(&p),
                    // Server-side session failure (e.g. worker crash): the
                    // next send/finish reconnects and resumes.
                    TAG_ERROR => {
                        dead = true;
                        break;
                    }
                    _ => {}
                },
                Ok(Incoming::Eof) | Ok(Incoming::IoErr(_)) => {
                    dead = true;
                    break;
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            self.conn = None;
        }
    }

    /// Shrink the replay tail and the dedup map as the frontier advances.
    fn prune(&mut self) {
        if self.max_pat > 0 {
            let low = self.resume_offset();
            if low > self.tail_start {
                self.tail.drain(..(low - self.tail_start) as usize);
                self.tail_start = low;
            }
        }
        let frontier = self.frontier;
        self.recent.retain(|_, end| *end > frontier);
    }
}
