//! Minimal length-prefixed byte protocol for `pdm serve` (std-only).
//!
//! Every frame is `[tag: u8][len: u32 LE][payload: len bytes]`.
//!
//! Client → server:
//! * [`TAG_CHUNK`] — payload is raw text bytes (one symbol per byte).
//! * [`TAG_CLOSE`] — empty payload; end of stream.
//!
//! Server → client:
//! * [`TAG_MATCH`] — payload `[start: u64 LE][pat: u32 LE][len: u32 LE]`;
//!   `start` is the absolute stream offset of the occurrence.
//! * [`TAG_SUMMARY`] — payload `[bytes: u64][chunks: u64][matches: u64]`
//!   (all LE); the final frame of a session.
//! * [`TAG_ERROR`] — payload is a UTF-8 message; the server closes after.
//!
//! One TCP connection = one session. Matches stream back while the client
//! is still sending, so the client must read concurrently (or rely on OS
//! socket buffers) — the server's per-session queues are bounded and will
//! otherwise push back through TCP.

use std::io::{self, Read, Write};

use crate::service::SessionSummary;
use crate::stream::StreamMatch;

pub const TAG_CHUNK: u8 = 0x01;
pub const TAG_CLOSE: u8 = 0x02;
pub const TAG_MATCH: u8 = 0x81;
pub const TAG_SUMMARY: u8 = 0x82;
pub const TAG_ERROR: u8 = 0x83;

/// Reject frames larger than this (64 MiB) — a corrupt length prefix must
/// not trigger a giant allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// Write one frame.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut tag = [0u8; 1];
    if r.read(&mut tag)? == 0 {
        return Ok(None);
    }
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((tag[0], payload)))
}

pub fn encode_match(m: &StreamMatch) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&m.start.to_le_bytes());
    b[8..12].copy_from_slice(&m.pat.to_le_bytes());
    b[12..].copy_from_slice(&m.len.to_le_bytes());
    b
}

pub fn decode_match(p: &[u8]) -> Option<StreamMatch> {
    if p.len() != 16 {
        return None;
    }
    Some(StreamMatch {
        start: u64::from_le_bytes(p[..8].try_into().ok()?),
        pat: u32::from_le_bytes(p[8..12].try_into().ok()?),
        len: u32::from_le_bytes(p[12..].try_into().ok()?),
    })
}

pub fn encode_summary(s: &SessionSummary) -> [u8; 24] {
    let mut b = [0u8; 24];
    b[..8].copy_from_slice(&s.consumed.to_le_bytes());
    b[8..16].copy_from_slice(&s.chunks.to_le_bytes());
    b[16..].copy_from_slice(&s.matches.to_le_bytes());
    b
}

pub fn decode_summary(p: &[u8]) -> Option<SessionSummary> {
    if p.len() != 24 {
        return None;
    }
    Some(SessionSummary {
        consumed: u64::from_le_bytes(p[..8].try_into().ok()?),
        chunks: u64::from_le_bytes(p[8..16].try_into().ok()?),
        matches: u64::from_le_bytes(p[16..].try_into().ok()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_CHUNK, b"hello").unwrap();
        write_frame(&mut buf, TAG_CLOSE, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((TAG_CHUNK, b"hello".to_vec()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), Some((TAG_CLOSE, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn match_and_summary_roundtrip() {
        let m = StreamMatch {
            start: 1 << 40,
            pat: 7,
            len: 3,
        };
        assert_eq!(decode_match(&encode_match(&m)), Some(m));
        let s = SessionSummary {
            consumed: 123,
            chunks: 4,
            matches: 9,
        };
        assert_eq!(decode_summary(&encode_summary(&s)), Some(s));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.push(TAG_CHUNK);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }
}
