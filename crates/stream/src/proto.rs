//! Minimal length-prefixed byte protocol for `pdm serve` (std-only).
//!
//! Every frame is `[tag: u8][len: u32 LE][payload: len bytes]`.
//!
//! Client → server:
//! * [`TAG_CHUNK`] — payload is raw text bytes (one symbol per byte).
//! * [`TAG_CLOSE`] — empty payload; end of stream.
//! * [`TAG_HELLO`] — optional, and only valid as the **first** frame:
//!   `[resume_offset: u64 LE][ack_every: u32 LE]`. Opts the session into
//!   resume-from-offset (the session's absolute stream offset starts at
//!   `resume_offset` instead of 0) and progress acks (a [`TAG_ACK`] after
//!   every `ack_every` chunks; 0 disables acks). Plain clients that skip
//!   the handshake get the original PR-1 protocol unchanged.
//! * [`TAG_DICT_ADD`] / [`TAG_DICT_REMOVE`] / [`TAG_DICT_COMMIT`] /
//!   [`TAG_DICT_INFO`] — live dictionary administration (servers started
//!   with a versioned dictionary only); each gets a [`TAG_DICT_OK`],
//!   [`TAG_DICT_ERR`] or [`TAG_DICT_INFO_RESP`] reply.
//!
//! Server → client:
//! * [`TAG_MATCH`] — payload `[start: u64 LE][pat: u32 LE][len: u32 LE]`;
//!   `start` is the absolute stream offset of the occurrence.
//! * [`TAG_SUMMARY`] — payload `[bytes: u64][chunks: u64][matches: u64]`
//!   (all LE); the final frame of a session.
//! * [`TAG_ERROR`] — payload is a UTF-8 message; the server closes after.
//! * [`TAG_HELLO_ACK`] — reply to [`TAG_HELLO`], sent before any other
//!   server frame: `[max_pattern_len: u32 LE]` (the dictionary's `m`, which
//!   a resuming client needs to pick a safe resume offset).
//! * [`TAG_ACK`] — `[consumed: u64 LE]`: every match whose end offset is
//!   ≤ `consumed` has already been written to this connection. The
//!   reconnecting client's exactly-once resume logic builds on this.
//! * [`TAG_EPOCH`] — the session adopted a new dictionary epoch; matches
//!   after this frame were found against it.
//!
//! One TCP connection = one session. Matches stream back while the client
//! is still sending, so the client must read concurrently (or rely on OS
//! socket buffers) — the server's per-session queues are bounded and will
//! otherwise push back through TCP.

use std::io::{self, Read, Write};

use crate::metrics::GlobalSnapshot;
use crate::service::SessionSummary;
use crate::stream::StreamMatch;

pub const TAG_CHUNK: u8 = 0x01;
pub const TAG_CLOSE: u8 = 0x02;
pub const TAG_HELLO: u8 = 0x03;
pub const TAG_MATCH: u8 = 0x81;
pub const TAG_SUMMARY: u8 = 0x82;
pub const TAG_ERROR: u8 = 0x83;
pub const TAG_HELLO_ACK: u8 = 0x84;
pub const TAG_ACK: u8 = 0x85;

// Dictionary administration (client → server). Valid on any connection at
// any frame boundary; the payload of ADD/REMOVE is the pattern's raw bytes
// (one symbol per byte, like TAG_CHUNK).
/// Stage a pattern add; replied with [`TAG_DICT_OK`]/[`TAG_DICT_ERR`].
pub const TAG_DICT_ADD: u8 = 0x10;
/// Stage a pattern remove; replied with [`TAG_DICT_OK`]/[`TAG_DICT_ERR`].
pub const TAG_DICT_REMOVE: u8 = 0x11;
/// Commit every staged op as a new epoch and swap it in (empty payload).
pub const TAG_DICT_COMMIT: u8 = 0x12;
/// Request a [`TAG_DICT_INFO_RESP`] (empty payload).
pub const TAG_DICT_INFO: u8 = 0x13;
/// Request a [`TAG_STATS_RESP`] with the server's global counters (empty
/// payload). Valid on any connection at any frame boundary — `pdm stats`
/// opens a connection, sends this, reads the reply, and closes.
pub const TAG_STATS: u8 = 0x14;

// Dictionary administration (server → client).
/// Admin op succeeded: `[epoch: u64 LE]` (the epoch after the op).
pub const TAG_DICT_OK: u8 = 0x90;
/// Admin op failed: UTF-8 message. The connection stays usable.
pub const TAG_DICT_ERR: u8 = 0x91;
/// Reply to [`TAG_DICT_INFO`]; see [`DictInfo`].
pub const TAG_DICT_INFO_RESP: u8 = 0x92;
/// Reply to [`TAG_STATS`]: `[count: u32 LE][count × u64 LE]` in
/// [`GlobalSnapshot::named_fields`] order. The count prefix lets an old
/// client read a newer server (extra fields ignored).
pub const TAG_STATS_RESP: u8 = 0x93;

/// Server → client, streaming sessions only: the session adopted a new
/// dictionary epoch at a chunk boundary. Payload is
/// `[epoch: u64 LE][max_pattern_len: u32 LE]`; every `TAG_MATCH` after
/// this frame (until the next one) was found against the named epoch, and
/// a resuming client must size its replay tail to the new
/// `max_pattern_len`.
pub const TAG_EPOCH: u8 = 0x86;

/// Reject frames larger than this (64 MiB) — a corrupt length prefix must
/// not trigger a giant allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// Write one frame. Payloads over [`MAX_FRAME`] are rejected with
/// `InvalidData` *before* any bytes hit the wire — truncating the length
/// prefix silently would desynchronize the stream for good.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "refusing to write {}-byte frame (MAX_FRAME is {MAX_FRAME})",
                payload.len()
            ),
        ));
    }
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
///
/// EOF *inside* a frame (the peer died mid-write) is not a clean close: it
/// surfaces as an `UnexpectedEof` error tagged "truncated frame", so
/// callers can count and report it instead of treating it as a normal
/// end-of-stream.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut tag = [0u8; 1];
    if r.read(&mut tag)? == 0 {
        return Ok(None);
    }
    let mut len = [0u8; 4];
    read_exact_in_frame(r, &mut len, "length prefix")?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_in_frame(r, &mut payload, "payload")?;
    Ok(Some((tag[0], payload)))
}

/// Incremental frame decoder for non-blocking sockets: [`Self::feed`]
/// whatever bytes a read produced, then pull complete frames with
/// [`Self::next_frame`]. Byte-split-invariant: any partition of a frame
/// stream across `feed` calls yields exactly the frames (and errors) that
/// [`read_frame`] would produce on the whole stream — the reactor's
/// per-connection read path and the proptests in `tests/frame_decode.rs`
/// rely on this.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily to amortize the memmove).
    pos: usize,
    /// A decode error desynchronizes the stream for good; latch it.
    poisoned: bool,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: keep the buffer bounded by
        // MAX_FRAME + header, not by history.
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame. `Ok(None)` = need more bytes.
    /// Errors match [`read_frame`]'s classification (an oversized length
    /// prefix is `InvalidData`) and are sticky: once the stream is
    /// desynchronized no further frames can be trusted.
    pub fn next_frame(&mut self) -> io::Result<Option<(u8, Vec<u8>)>> {
        if self.poisoned {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame stream desynchronized by an earlier decode error",
            ));
        }
        let avail = self.buf.len() - self.pos;
        if avail < 5 {
            return Ok(None);
        }
        let tag = self.buf[self.pos];
        let len = u32::from_le_bytes(self.buf[self.pos + 1..self.pos + 5].try_into().unwrap());
        if len > MAX_FRAME {
            self.poisoned = true;
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds MAX_FRAME"),
            ));
        }
        let total = 5 + len as usize;
        if avail < total {
            return Ok(None);
        }
        let payload = self.buf[self.pos + 5..self.pos + total].to_vec();
        self.pos += total;
        Ok(Some((tag, payload)))
    }

    /// Bytes buffered but not yet consumed as frames. Non-zero at EOF
    /// means the peer died mid-frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True iff EOF *now* would be a truncation, not a clean close.
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// The error [`read_frame`] would report for EOF at the current
    /// position (callers use it when the socket closes mid-frame).
    pub fn truncation_error(&self) -> io::Error {
        let what = if self.buffered() < 5 {
            "length prefix"
        } else {
            "payload"
        };
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("truncated frame: EOF in {what}"),
        )
    }
}

fn read_exact_in_frame(r: &mut impl Read, buf: &mut [u8], what: &str) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("truncated frame: EOF in {what}"),
            )
        } else {
            e
        }
    })
}

pub fn encode_match(m: &StreamMatch) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&m.start.to_le_bytes());
    b[8..12].copy_from_slice(&m.pat.to_le_bytes());
    b[12..].copy_from_slice(&m.len.to_le_bytes());
    b
}

pub fn decode_match(p: &[u8]) -> Option<StreamMatch> {
    if p.len() != 16 {
        return None;
    }
    Some(StreamMatch {
        start: u64::from_le_bytes(p[..8].try_into().ok()?),
        pat: u32::from_le_bytes(p[8..12].try_into().ok()?),
        len: u32::from_le_bytes(p[12..].try_into().ok()?),
    })
}

pub fn encode_summary(s: &SessionSummary) -> [u8; 24] {
    let mut b = [0u8; 24];
    b[..8].copy_from_slice(&s.consumed.to_le_bytes());
    b[8..16].copy_from_slice(&s.chunks.to_le_bytes());
    b[16..].copy_from_slice(&s.matches.to_le_bytes());
    b
}

pub fn decode_summary(p: &[u8]) -> Option<SessionSummary> {
    if p.len() != 24 {
        return None;
    }
    Some(SessionSummary {
        consumed: u64::from_le_bytes(p[..8].try_into().ok()?),
        chunks: u64::from_le_bytes(p[8..16].try_into().ok()?),
        matches: u64::from_le_bytes(p[16..].try_into().ok()?),
    })
}

/// Decoded [`TAG_HELLO`] payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hello {
    /// Absolute stream offset this session starts at (0 for a fresh stream).
    pub resume_offset: u64,
    /// Request a [`TAG_ACK`] after every this many chunks (0 = no acks).
    pub ack_every: u32,
}

pub fn encode_hello(h: &Hello) -> [u8; 12] {
    let mut b = [0u8; 12];
    b[..8].copy_from_slice(&h.resume_offset.to_le_bytes());
    b[8..].copy_from_slice(&h.ack_every.to_le_bytes());
    b
}

pub fn decode_hello(p: &[u8]) -> Option<Hello> {
    if p.len() != 12 {
        return None;
    }
    Some(Hello {
        resume_offset: u64::from_le_bytes(p[..8].try_into().ok()?),
        ack_every: u32::from_le_bytes(p[8..].try_into().ok()?),
    })
}

pub fn encode_hello_ack(max_pattern_len: u32) -> [u8; 4] {
    max_pattern_len.to_le_bytes()
}

pub fn decode_hello_ack(p: &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(p.try_into().ok()?))
}

pub fn encode_ack(consumed: u64) -> [u8; 8] {
    consumed.to_le_bytes()
}

pub fn decode_ack(p: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(p.try_into().ok()?))
}

/// Decoded [`TAG_EPOCH`] payload: an epoch change observed by a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochChange {
    pub epoch: u64,
    pub max_pattern_len: u32,
}

pub fn encode_epoch(e: &EpochChange) -> [u8; 12] {
    let mut b = [0u8; 12];
    b[..8].copy_from_slice(&e.epoch.to_le_bytes());
    b[8..].copy_from_slice(&e.max_pattern_len.to_le_bytes());
    b
}

pub fn decode_epoch(p: &[u8]) -> Option<EpochChange> {
    if p.len() != 12 {
        return None;
    }
    Some(EpochChange {
        epoch: u64::from_le_bytes(p[..8].try_into().ok()?),
        max_pattern_len: u32::from_le_bytes(p[8..].try_into().ok()?),
    })
}

/// Encode a [`TAG_STATS_RESP`] payload: count-prefixed u64 counters in
/// [`GlobalSnapshot::named_fields`] order.
pub fn encode_stats(s: &GlobalSnapshot) -> Vec<u8> {
    let fields = s.named_fields();
    let mut b = Vec::with_capacity(4 + fields.len() * 8);
    b.extend_from_slice(&(fields.len() as u32).to_le_bytes());
    for (_, v) in fields {
        b.extend_from_slice(&v.to_le_bytes());
    }
    b
}

/// Decode a [`TAG_STATS_RESP`] payload. Tolerates a newer server sending
/// extra trailing counters; rejects short or inconsistent payloads.
pub fn decode_stats(p: &[u8]) -> Option<GlobalSnapshot> {
    if p.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(p[..4].try_into().ok()?) as usize;
    if p.len() != 4 + count * 8 {
        return None;
    }
    let vals: Vec<u64> = p[4..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    GlobalSnapshot::from_values(&vals)
}

/// Decoded [`TAG_DICT_INFO_RESP`] payload: the served dictionary's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DictInfo {
    /// Current committed epoch.
    pub epoch: u64,
    /// Live committed patterns.
    pub patterns: u32,
    /// Staged (uncommitted) ops.
    pub staged: u32,
    /// Longest pattern in the current epoch.
    pub max_pattern_len: u32,
}

pub fn encode_dict_info(i: &DictInfo) -> [u8; 20] {
    let mut b = [0u8; 20];
    b[..8].copy_from_slice(&i.epoch.to_le_bytes());
    b[8..12].copy_from_slice(&i.patterns.to_le_bytes());
    b[12..16].copy_from_slice(&i.staged.to_le_bytes());
    b[16..].copy_from_slice(&i.max_pattern_len.to_le_bytes());
    b
}

pub fn decode_dict_info(p: &[u8]) -> Option<DictInfo> {
    if p.len() != 20 {
        return None;
    }
    Some(DictInfo {
        epoch: u64::from_le_bytes(p[..8].try_into().ok()?),
        patterns: u32::from_le_bytes(p[8..12].try_into().ok()?),
        staged: u32::from_le_bytes(p[12..16].try_into().ok()?),
        max_pattern_len: u32::from_le_bytes(p[16..].try_into().ok()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_CHUNK, b"hello").unwrap();
        write_frame(&mut buf, TAG_CLOSE, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((TAG_CHUNK, b"hello".to_vec()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), Some((TAG_CLOSE, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn match_and_summary_roundtrip() {
        let m = StreamMatch {
            start: 1 << 40,
            pat: 7,
            len: 3,
        };
        assert_eq!(decode_match(&encode_match(&m)), Some(m));
        let s = SessionSummary {
            consumed: 123,
            chunks: 4,
            matches: 9,
        };
        assert_eq!(decode_summary(&encode_summary(&s)), Some(s));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.push(TAG_CHUNK);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn oversized_write_rejected_before_any_bytes() {
        // A payload over MAX_FRAME must be refused with InvalidData and
        // leave the sink untouched (no corrupt length prefix in release
        // builds, where the old debug_assert! vanished).
        let huge = vec![0u8; MAX_FRAME as usize + 1];
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, TAG_CHUNK, &huge).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(buf.is_empty(), "no partial frame written");
    }

    #[test]
    fn eof_mid_frame_is_truncation_not_clean_close() {
        // Header promises 10 bytes, stream dies after 3.
        let mut buf = Vec::new();
        buf.push(TAG_CHUNK);
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("truncated frame"), "{err}");
        // EOF right after the tag byte, before the length prefix.
        let err = read_frame(&mut &[TAG_CHUNK][..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("truncated frame"), "{err}");
    }

    #[test]
    fn epoch_and_dict_info_roundtrip() {
        let e = EpochChange {
            epoch: 1 << 50,
            max_pattern_len: 9,
        };
        assert_eq!(decode_epoch(&encode_epoch(&e)), Some(e));
        assert_eq!(decode_epoch(b"short"), None);
        let i = DictInfo {
            epoch: 7,
            patterns: 100,
            staged: 3,
            max_pattern_len: 12,
        };
        assert_eq!(decode_dict_info(&encode_dict_info(&i)), Some(i));
        assert_eq!(decode_dict_info(&[0u8; 19]), None);
    }

    #[test]
    fn stats_roundtrip_and_forward_compat() {
        let s = GlobalSnapshot {
            chunks: 7,
            bytes: 1 << 40,
            reactor_wakeups: 42,
            timer_expirations: 3,
            ..Default::default()
        };
        assert_eq!(decode_stats(&encode_stats(&s)), Some(s));
        // A newer server with one extra counter still decodes.
        let mut extended = encode_stats(&s);
        let count = GlobalSnapshot::FIELD_COUNT as u32 + 1;
        extended[..4].copy_from_slice(&count.to_le_bytes());
        extended.extend_from_slice(&99u64.to_le_bytes());
        assert_eq!(decode_stats(&extended), Some(s));
        // Short or inconsistent payloads are rejected.
        assert_eq!(decode_stats(&encode_stats(&s)[..20]), None);
        assert_eq!(decode_stats(b""), None);
    }

    #[test]
    fn incremental_decoder_matches_read_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_HELLO, &encode_hello(&Hello::default())).unwrap();
        write_frame(&mut wire, TAG_CHUNK, b"ushers").unwrap();
        write_frame(&mut wire, TAG_CLOSE, b"").unwrap();
        // Feed one byte at a time: same frames as whole-stream reads.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &wire {
            dec.feed(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert!(!dec.mid_frame());
        let mut r = &wire[..];
        let mut want = Vec::new();
        while let Some(f) = read_frame(&mut r).unwrap() {
            want.push(f);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn incremental_decoder_oversized_is_sticky() {
        let mut dec = FrameDecoder::new();
        dec.feed(&[TAG_CHUNK]);
        dec.feed(&u32::MAX.to_le_bytes());
        let err = dec.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("MAX_FRAME"), "{err}");
        // Poisoned: further pulls keep failing (stream is desynced).
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn incremental_decoder_truncation_classification() {
        // EOF with a partial header → "length prefix".
        let mut dec = FrameDecoder::new();
        dec.feed(&[TAG_CHUNK, 1, 0]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(dec.mid_frame());
        let err = dec.truncation_error();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("length prefix"), "{err}");
        // EOF with a full header mid-payload → "payload".
        let mut dec = FrameDecoder::new();
        dec.feed(&[TAG_CHUNK]);
        dec.feed(&10u32.to_le_bytes());
        dec.feed(b"abc");
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(dec.truncation_error().to_string().contains("payload"));
    }

    #[test]
    fn hello_and_ack_roundtrip() {
        let h = Hello {
            resume_offset: 1 << 33,
            ack_every: 4,
        };
        assert_eq!(decode_hello(&encode_hello(&h)), Some(h));
        assert_eq!(decode_hello(b"short"), None);
        assert_eq!(decode_hello_ack(&encode_hello_ack(17)), Some(17));
        assert_eq!(decode_ack(&encode_ack(99)), Some(99));
        assert_eq!(decode_ack(b"bad"), None);
    }
}
