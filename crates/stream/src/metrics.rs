//! Lock-free counters for the service layer.
//!
//! Two levels: [`SessionCounters`] (one per session, shared between the
//! worker that owns the session and the client handle) and
//! [`GlobalMetrics`] (one per service — aggregates plus a queue-depth
//! gauge with a high-water mark, and a stall counter for backpressure
//! events).

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-session counters (relaxed atomics; read via [`Self::snapshot`]).
#[derive(Debug, Default)]
pub struct SessionCounters {
    chunks: AtomicU64,
    bytes: AtomicU64,
    matches: AtomicU64,
}

/// A point-in-time copy of [`SessionCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionSnapshot {
    pub chunks: u64,
    pub bytes: u64,
    pub matches: u64,
}

impl SessionCounters {
    pub fn record_chunk(&self, bytes: u64, matches: u64) {
        self.chunks.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.matches.fetch_add(matches, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            chunks: self.chunks.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            matches: self.matches.load(Ordering::Relaxed),
        }
    }
}

/// Service-wide counters plus the in-flight chunk gauge.
///
/// `queue_depth` counts chunks accepted into a shard queue and not yet
/// picked up by their worker; it is bounded by `queue_cap + workers` by
/// construction. `stalls` counts backpressure events: blocking pushes that
/// had to wait, plus `try_push` calls rejected with `WouldBlock`.
///
/// The degradation counters record every fault-tolerance action so an
/// operator can see *how* the service is degrading under load or faults:
/// `conns_shed` (accept-time load shedding at the connection cap),
/// `read_timeouts` (idle connections reaped), `truncated_frames` (peers
/// that died mid-frame), `accept_retries` (transient `accept()` errors
/// survived with backoff), `worker_restarts` (shard workers respawned
/// after a crash), `sessions_failed` (sessions aborted with
/// `Event::Failed`/`TAG_ERROR` instead of a summary; also counted in
/// `sessions_closed` so open/close accounting stays consistent), and
/// `drain_forced` (connections force-closed at the drain deadline).
#[derive(Debug, Default)]
pub struct GlobalMetrics {
    chunks: AtomicU64,
    bytes: AtomicU64,
    matches: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_max: AtomicU64,
    stalls: AtomicU64,
    conns_shed: AtomicU64,
    read_timeouts: AtomicU64,
    truncated_frames: AtomicU64,
    accept_retries: AtomicU64,
    worker_restarts: AtomicU64,
    sessions_failed: AtomicU64,
    drain_forced: AtomicU64,
    epoch_swaps: AtomicU64,
    epoch_adoptions: AtomicU64,
    dict_applies_incremental: AtomicU64,
    dict_rebuilds_full: AtomicU64,
    reactor_wakeups: AtomicU64,
    reactor_events: AtomicU64,
    frames_decoded: AtomicU64,
    partial_writes: AtomicU64,
    timer_expirations: AtomicU64,
}

/// A point-in-time copy of [`GlobalMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GlobalSnapshot {
    pub chunks: u64,
    pub bytes: u64,
    pub matches: u64,
    pub sessions_opened: u64,
    pub sessions_closed: u64,
    pub queue_depth: u64,
    pub queue_depth_max: u64,
    pub stalls: u64,
    pub conns_shed: u64,
    pub read_timeouts: u64,
    pub truncated_frames: u64,
    pub accept_retries: u64,
    pub worker_restarts: u64,
    pub sessions_failed: u64,
    pub drain_forced: u64,
    /// Dictionary epochs published (swaps visible to new chunks).
    pub epoch_swaps: u64,
    /// Session-level adoptions of a published epoch at a chunk boundary.
    pub epoch_adoptions: u64,
    /// Commits that went through the incremental (§6 dynamic) path.
    pub dict_applies_incremental: u64,
    /// Commits that ran a full parallel rebuild.
    pub dict_rebuilds_full: u64,
    /// Reactor-loop iterations (returns from `poll`, including timeouts,
    /// spurious wakeups, and `EINTR`). Serve-mode `reactor` only.
    pub reactor_wakeups: u64,
    /// Readiness events delivered across all wakeups;
    /// `reactor_events / reactor_wakeups` is the ready-events-per-wakeup
    /// ratio (higher = better syscall amortization).
    pub reactor_events: u64,
    /// Complete client frames decoded from per-connection read buffers.
    pub frames_decoded: u64,
    /// Socket writes that hit `WouldBlock` mid-frame and parked the rest
    /// behind an `EPOLLOUT`-style writable subscription.
    pub partial_writes: u64,
    /// Timer-wheel entries that fired (idle-timeout checks).
    pub timer_expirations: u64,
}

impl GlobalSnapshot {
    /// Number of counters in [`Self::named_fields`] (the wire-stats field
    /// count; see [`crate::proto::encode_stats`]).
    pub const FIELD_COUNT: usize = 24;

    /// Every counter as a `(name, value)` pair, in a fixed order shared by
    /// the wire encoding and the `pdm stats` output.
    pub fn named_fields(&self) -> [(&'static str, u64); Self::FIELD_COUNT] {
        [
            ("chunks", self.chunks),
            ("bytes", self.bytes),
            ("matches", self.matches),
            ("sessions_opened", self.sessions_opened),
            ("sessions_closed", self.sessions_closed),
            ("queue_depth", self.queue_depth),
            ("queue_depth_max", self.queue_depth_max),
            ("stalls", self.stalls),
            ("conns_shed", self.conns_shed),
            ("read_timeouts", self.read_timeouts),
            ("truncated_frames", self.truncated_frames),
            ("accept_retries", self.accept_retries),
            ("worker_restarts", self.worker_restarts),
            ("sessions_failed", self.sessions_failed),
            ("drain_forced", self.drain_forced),
            ("epoch_swaps", self.epoch_swaps),
            ("epoch_adoptions", self.epoch_adoptions),
            ("dict_applies_incremental", self.dict_applies_incremental),
            ("dict_rebuilds_full", self.dict_rebuilds_full),
            ("reactor_wakeups", self.reactor_wakeups),
            ("reactor_events", self.reactor_events),
            ("frames_decoded", self.frames_decoded),
            ("partial_writes", self.partial_writes),
            ("timer_expirations", self.timer_expirations),
        ]
    }

    /// Rebuild a snapshot from values in [`Self::named_fields`] order.
    /// Extra trailing values (a newer peer) are ignored; too few is `None`.
    pub fn from_values(vals: &[u64]) -> Option<GlobalSnapshot> {
        if vals.len() < Self::FIELD_COUNT {
            return None;
        }
        Some(GlobalSnapshot {
            chunks: vals[0],
            bytes: vals[1],
            matches: vals[2],
            sessions_opened: vals[3],
            sessions_closed: vals[4],
            queue_depth: vals[5],
            queue_depth_max: vals[6],
            stalls: vals[7],
            conns_shed: vals[8],
            read_timeouts: vals[9],
            truncated_frames: vals[10],
            accept_retries: vals[11],
            worker_restarts: vals[12],
            sessions_failed: vals[13],
            drain_forced: vals[14],
            epoch_swaps: vals[15],
            epoch_adoptions: vals[16],
            dict_applies_incremental: vals[17],
            dict_rebuilds_full: vals[18],
            reactor_wakeups: vals[19],
            reactor_events: vals[20],
            frames_decoded: vals[21],
            partial_writes: vals[22],
            timer_expirations: vals[23],
        })
    }
}

impl GlobalMetrics {
    pub fn record_chunk_done(&self, bytes: u64, matches: u64) {
        self.chunks.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.matches.fetch_add(matches, Ordering::Relaxed);
    }

    pub fn session_opened(&self) {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
    }

    pub fn session_closed(&self) {
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_stall(&self) {
        self.stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was refused at accept time (connection cap reached).
    pub fn conn_shed(&self) {
        self.conns_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was closed for exceeding its read/idle timeout.
    pub fn read_timeout(&self) {
        self.read_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// A peer died mid-frame (EOF inside a frame, not at a boundary).
    pub fn truncated_frame(&self) {
        self.truncated_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// The accept loop survived a transient `accept()` error with backoff.
    pub fn accept_retry(&self) {
        self.accept_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// A crashed shard worker was respawned by its supervisor.
    pub fn worker_restarted(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// A session was aborted (`Event::Failed`) instead of closing cleanly.
    pub fn session_failed(&self) {
        self.sessions_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was force-closed at the drain deadline.
    pub fn drain_force_closed(&self) {
        self.drain_forced.fetch_add(1, Ordering::Relaxed);
    }

    /// A new dictionary epoch was published; `incremental` names the
    /// rebuild path its commit took.
    pub fn epoch_swapped(&self, incremental: bool) {
        self.epoch_swaps.fetch_add(1, Ordering::Relaxed);
        if incremental {
            self.dict_applies_incremental
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.dict_rebuilds_full.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A session adopted a published epoch at a chunk boundary.
    pub fn epoch_adopted(&self) {
        self.epoch_adoptions.fetch_add(1, Ordering::Relaxed);
    }

    /// One reactor-loop iteration finished a wait that delivered `events`
    /// readiness events (0 for timeouts/spurious wakeups/`EINTR`).
    pub fn reactor_wakeup(&self, events: u64) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
        self.reactor_events.fetch_add(events, Ordering::Relaxed);
    }

    /// A complete client frame was decoded from a connection read buffer.
    pub fn frame_decoded(&self) {
        self.frames_decoded.fetch_add(1, Ordering::Relaxed);
    }

    /// A socket write stopped at `WouldBlock` with bytes still pending
    /// (the connection subscribed to writability for the rest).
    pub fn partial_write(&self) {
        self.partial_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// A timer-wheel entry fired.
    pub fn timer_expired(&self) {
        self.timer_expirations.fetch_add(1, Ordering::Relaxed);
    }

    /// A chunk entered a shard queue.
    pub fn enqueued(&self) {
        let d = self.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.queue_depth_max.fetch_max(d, Ordering::SeqCst);
    }

    /// A chunk finished processing (left the queue *and* its worker).
    pub fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::SeqCst);
    }

    pub fn snapshot(&self) -> GlobalSnapshot {
        GlobalSnapshot {
            chunks: self.chunks.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            matches: self.matches.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::SeqCst),
            queue_depth_max: self.queue_depth_max.load(Ordering::SeqCst),
            stalls: self.stalls.load(Ordering::Relaxed),
            conns_shed: self.conns_shed.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            truncated_frames: self.truncated_frames.load(Ordering::Relaxed),
            accept_retries: self.accept_retries.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            sessions_failed: self.sessions_failed.load(Ordering::Relaxed),
            drain_forced: self.drain_forced.load(Ordering::Relaxed),
            epoch_swaps: self.epoch_swaps.load(Ordering::Relaxed),
            epoch_adoptions: self.epoch_adoptions.load(Ordering::Relaxed),
            dict_applies_incremental: self.dict_applies_incremental.load(Ordering::Relaxed),
            dict_rebuilds_full: self.dict_rebuilds_full.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            reactor_events: self.reactor_events.load(Ordering::Relaxed),
            frames_decoded: self.frames_decoded.load(Ordering::Relaxed),
            partial_writes: self.partial_writes.load(Ordering::Relaxed),
            timer_expirations: self.timer_expirations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_high_water() {
        let g = GlobalMetrics::default();
        g.enqueued();
        g.enqueued();
        g.dequeued();
        g.enqueued();
        let s = g.snapshot();
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_depth_max, 2);
    }

    #[test]
    fn session_counters_accumulate() {
        let c = SessionCounters::default();
        c.record_chunk(10, 2);
        c.record_chunk(5, 0);
        let s = c.snapshot();
        assert_eq!((s.chunks, s.bytes, s.matches), (2, 15, 2));
    }
}
