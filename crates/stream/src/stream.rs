//! Chunk-at-a-time matching with an `m − 1` overlap carry.
//!
//! ## Exactly-once across chunk boundaries
//!
//! [`StreamMatcher::push`] matches over the window `carry ++ chunk`, where
//! `carry` holds the last `min(consumed, m − 1)` symbols of the stream so
//! far (`m` = longest pattern length). An occurrence is *emitted* iff its
//! **end** lies inside the new chunk, i.e. `i + len(p) > carry.len()` for a
//! window-relative start `i`.
//!
//! * **Complete**: an occurrence ending in this chunk starts at most
//!   `m − 1` symbols before the chunk does, so it lies entirely inside the
//!   window — `find_all` on the window sees it.
//! * **Exactly once**: an occurrence whose end lies at stream position `e`
//!   is emitted by the unique `push` whose chunk covers `e`. Occurrences
//!   contained wholly in the carry ended in previously consumed text and
//!   were emitted then (induction; the carry starts empty).
//!
//! Positions are absolute stream offsets (`u64`), so a matcher can run
//! over arbitrarily long streams with `O(m + chunk)` memory per push.

use std::sync::Arc;

use pdm_core::dict::{PatId, Sym};
use pdm_core::static1d::StaticMatcher;
use pdm_core::TextScratch;
use pdm_pram::Ctx;

/// One occurrence in the stream: pattern `pat` (of length `len`) begins at
/// absolute stream offset `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StreamMatch {
    pub start: u64,
    pub pat: PatId,
    pub len: u32,
}

/// What a streaming cursor needs from a dictionary: all-matches lookup and
/// pattern lengths. Implemented by the bare [`StaticMatcher`] (fixed
/// dictionary, pattern ids are build order) and by
/// [`pdm_dict::Snapshot`] (one epoch of a versioned dictionary, canonical
/// ids) — so the same cursor serves both the static and the live-update
/// serving paths.
pub trait StreamDict: Send + Sync {
    /// Every `(position, pattern)` occurrence in `text`, sorted by
    /// position then pattern id.
    fn find_all(&self, ctx: &Ctx, text: &[Sym]) -> Vec<(usize, PatId)>;
    /// [`Self::find_all`] into caller-owned buffers, reusing `scratch`
    /// across chunks. The default delegates to the allocating
    /// [`Self::find_all`]; dictionaries with a frozen read path override
    /// this so a streaming session allocates nothing per chunk in steady
    /// state.
    fn find_all_into(
        &self,
        ctx: &Ctx,
        text: &[Sym],
        _scratch: &mut TextScratch,
        out: &mut Vec<(usize, PatId)>,
    ) {
        out.clear();
        out.extend(self.find_all(ctx, text));
    }
    /// Length of pattern `p`.
    fn pattern_len(&self, p: PatId) -> u32;
    /// Length of the longest pattern (`m`; the carry keeps `m − 1`).
    fn max_pattern_len(&self) -> usize;
}

impl StreamDict for StaticMatcher {
    fn find_all(&self, ctx: &Ctx, text: &[Sym]) -> Vec<(usize, PatId)> {
        StaticMatcher::find_all(self, ctx, text)
    }

    fn find_all_into(
        &self,
        ctx: &Ctx,
        text: &[Sym],
        scratch: &mut TextScratch,
        out: &mut Vec<(usize, PatId)>,
    ) {
        StaticMatcher::find_all_into(self, ctx, text, scratch, out)
    }

    fn pattern_len(&self, p: PatId) -> u32 {
        StaticMatcher::pattern_len(self, p)
    }

    fn max_pattern_len(&self) -> usize {
        StaticMatcher::max_pattern_len(self)
    }
}

impl StreamDict for pdm_dict::Snapshot {
    fn find_all(&self, ctx: &Ctx, text: &[Sym]) -> Vec<(usize, PatId)> {
        pdm_dict::Snapshot::find_all(self, ctx, text)
    }

    fn find_all_into(
        &self,
        ctx: &Ctx,
        text: &[Sym],
        scratch: &mut TextScratch,
        out: &mut Vec<(usize, PatId)>,
    ) {
        pdm_dict::Snapshot::find_all_into(self, ctx, text, scratch, out)
    }

    fn pattern_len(&self, p: PatId) -> u32 {
        pdm_dict::Snapshot::pattern_len(self, p)
    }

    fn max_pattern_len(&self) -> usize {
        pdm_dict::Snapshot::max_pattern_len(self)
    }
}

/// A per-stream matching cursor over a shared, immutable dictionary.
///
/// Feed chunks of any size (including smaller than the longest pattern, or
/// empty); collect occurrences with absolute offsets. The execution policy
/// is chosen per call, so one session can match small chunks sequentially
/// and large ones with `ExecPolicy::Par`.
///
/// The dictionary is any [`StreamDict`] (default: a [`StaticMatcher`]).
/// Versioned sessions swap in a new epoch between chunks with
/// [`StreamMatcher::swap_dict`]; the swap never lands mid-chunk, so every
/// chunk is matched entirely against the epoch it started with.
#[derive(Debug)]
pub struct StreamMatcher<D: StreamDict = StaticMatcher> {
    dict: Arc<D>,
    /// Last `min(consumed, m − 1)` symbols already consumed.
    carry: Vec<Sym>,
    /// Total symbols consumed so far (absolute offset of the next symbol).
    consumed: u64,
    /// Session-lifetime match scratch: once warm, pushes allocate nothing.
    scratch: TextScratch,
    /// Reused `(window position, pattern)` buffer for `find_all_into`.
    find_buf: Vec<(usize, PatId)>,
}

impl<D: StreamDict> StreamMatcher<D> {
    pub fn new(dict: Arc<D>) -> Self {
        Self {
            dict,
            carry: Vec::new(),
            consumed: 0,
            scratch: TextScratch::new(),
            find_buf: Vec::new(),
        }
    }

    /// Buffer (re)allocation events served by this session's scratch so
    /// far. Flat across pushes once the session is warm — the zero-alloc
    /// steady-state tests assert on exactly this counter.
    pub fn scratch_grow_events(&self) -> u64 {
        self.scratch.grow_events()
    }

    /// The shared dictionary this cursor matches against.
    pub fn dict(&self) -> &Arc<D> {
        &self.dict
    }

    /// Replace the dictionary between chunks (epoch swap). The carry is
    /// re-trimmed to the new dictionary's `m − 1`: if the new longest
    /// pattern is shorter the excess is dropped; if it is longer, only the
    /// symbols the old epoch retained are available, so a *new* pattern
    /// longer than the old `m` may miss occurrences spanning the swap
    /// point (see DESIGN.md §10 — matches are exact w.r.t. the epoch their
    /// chunk started in).
    pub fn swap_dict(&mut self, dict: Arc<D>) {
        self.dict = dict;
        let keep = self
            .dict
            .max_pattern_len()
            .saturating_sub(1)
            .min(self.carry.len());
        let cut = self.carry.len() - keep;
        self.carry.drain(..cut);
    }

    /// Total symbols consumed so far (= absolute offset of the next chunk).
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Current carry length (`min(consumed, m − 1)`); exposed for tests.
    pub fn carry_len(&self) -> usize {
        self.carry.len()
    }

    /// Consume `chunk`, returning every occurrence that *ends* inside it,
    /// sorted by `(start, pat)`.
    pub fn push(&mut self, ctx: &Ctx, chunk: &[Sym]) -> Vec<StreamMatch> {
        let mut out = Vec::new();
        self.push_into(ctx, chunk, &mut out);
        out
    }

    /// [`Self::push`] into a caller-provided buffer (appends).
    pub fn push_into(&mut self, ctx: &Ctx, chunk: &[Sym], out: &mut Vec<StreamMatch>) {
        if chunk.is_empty() {
            return;
        }
        let carry_len = self.carry.len();
        let window_start = self.consumed - carry_len as u64;

        // Window = carry ++ chunk. For typical chunk ≫ m this is one copy
        // of the chunk; reusing the carry buffer keeps it allocation-stable.
        let mut window = std::mem::take(&mut self.carry);
        window.extend_from_slice(chunk);

        self.dict
            .find_all_into(ctx, &window, &mut self.scratch, &mut self.find_buf);
        for &(i, p) in &self.find_buf {
            let len = self.dict.pattern_len(p);
            if i + len as usize > carry_len {
                out.push(StreamMatch {
                    start: window_start + i as u64,
                    pat: p,
                    len,
                });
            }
        }

        self.consumed += chunk.len() as u64;
        let overlap = self.dict.max_pattern_len().saturating_sub(1);
        let keep = overlap.min(window.len());
        window.drain(..window.len() - keep);
        self.carry = window;
    }

    /// Declare end-of-stream. No symbols remain buffered unmatched (every
    /// push reports all occurrences ending in it), so this just resets the
    /// carry; the cursor can be reused for a fresh stream.
    pub fn finish(&mut self) {
        self.carry.clear();
        self.consumed = 0;
    }

    /// Reposition the cursor at absolute stream offset `offset` with an
    /// empty carry, as if `offset` symbols had already been consumed.
    ///
    /// Used by resumed sessions: a reconnecting client re-sends the text
    /// from `offset` onward and this cursor reports occurrences with their
    /// original absolute offsets. An occurrence *spanning* `offset` is only
    /// found if the client re-sends from at least `m − 1` symbols before it
    /// (the carry starts empty) — which is exactly what
    /// [`crate::client::RetryingClient`] does.
    pub fn resume_at(&mut self, offset: u64) {
        self.carry.clear();
        self.consumed = offset;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::dict::symbolize;
    use pdm_core::dict::to_symbols;

    fn dict(pats: &[&str]) -> Arc<StaticMatcher> {
        let ctx = Ctx::seq();
        Arc::new(StaticMatcher::build(&ctx, &symbolize(pats)).unwrap())
    }

    fn stream_all(d: &Arc<StaticMatcher>, text: &[Sym], chunk: usize) -> Vec<StreamMatch> {
        let ctx = Ctx::seq();
        let mut m = StreamMatcher::new(Arc::clone(d));
        let mut out = Vec::new();
        for c in text.chunks(chunk.max(1)) {
            m.push_into(&ctx, c, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn oracle(d: &Arc<StaticMatcher>, text: &[Sym]) -> Vec<StreamMatch> {
        let ctx = Ctx::seq();
        d.find_all(&ctx, text)
            .into_iter()
            .map(|(i, p)| StreamMatch {
                start: i as u64,
                pat: p,
                len: d.pattern_len(p),
            })
            .collect()
    }

    #[test]
    fn boundary_spanning_match_found_once() {
        let d = dict(&["he", "she", "his", "hers"]);
        let text = to_symbols("ushers");
        for chunk in 1..=7 {
            assert_eq!(
                stream_all(&d, &text, chunk),
                oracle(&d, &text),
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn chunks_smaller_than_longest_pattern() {
        let d = dict(&["abcdefgh", "cde"]);
        let text = to_symbols("xxabcdefghxxcdexx");
        for chunk in 1..=4 {
            assert_eq!(
                stream_all(&d, &text, chunk),
                oracle(&d, &text),
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn absolute_offsets_survive_many_pushes() {
        let d = dict(&["ab"]);
        let ctx = Ctx::seq();
        let mut m = StreamMatcher::new(Arc::clone(&d));
        let mut got = Vec::new();
        // 100 copies of "ab" pushed one symbol at a time.
        let text = to_symbols(&"ab".repeat(100));
        for c in text.chunks(1) {
            m.push_into(&ctx, c, &mut got);
        }
        assert_eq!(m.consumed(), 200);
        let want: Vec<u64> = (0..100).map(|k| 2 * k).collect();
        assert_eq!(got.iter().map(|o| o.start).collect::<Vec<_>>(), want);
    }

    #[test]
    fn empty_chunks_are_noops() {
        let d = dict(&["aa"]);
        let ctx = Ctx::seq();
        let mut m = StreamMatcher::new(d);
        assert!(m.push(&ctx, &[]).is_empty());
        assert_eq!(m.consumed(), 0);
        let t = to_symbols("aaa");
        let mut out = Vec::new();
        m.push_into(&ctx, &t[..2], &mut out);
        m.push_into(&ctx, &[], &mut out);
        m.push_into(&ctx, &t[2..], &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].start, 0);
        assert_eq!(out[1].start, 1);
    }

    #[test]
    fn resume_at_reports_absolute_offsets() {
        let d = dict(&["he", "she", "hers"]);
        let ctx = Ctx::seq();
        let mut m = StreamMatcher::new(d);
        m.resume_at(100);
        let t = to_symbols("ushers");
        let got = m.push(&ctx, &t);
        let starts: Vec<u64> = got.iter().map(|o| o.start).collect();
        assert_eq!(starts, vec![101, 102, 102]); // she, he, hers
        assert_eq!(m.consumed(), 106);
    }

    #[test]
    fn finish_resets_for_reuse() {
        let d = dict(&["ab"]);
        let ctx = Ctx::seq();
        let mut m = StreamMatcher::new(d);
        let t = to_symbols("zab");
        assert_eq!(m.push(&ctx, &t).len(), 1);
        m.finish();
        assert_eq!(m.consumed(), 0);
        let again = m.push(&ctx, &t);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].start, 1);
    }
}
