//! Many concurrent streams over one shared dictionary.
//!
//! A [`ShardedService`] owns `workers` shard threads, each with a
//! **bounded** job queue. A [`Session`] (one per stream) is pinned to the
//! shard `id % workers`, so its chunks are processed in order by a single
//! worker that holds the session's [`StreamMatcher`] carry state. The
//! dictionary is an [`EpochHandle`]: one immutable [`Snapshot`] behind an
//! `Arc`-swap slot — workers share tables, never copy them (the paper's
//! "preprocess once, match many texts" economics, made concurrent).
//!
//! ## Epoch adoption
//!
//! A dictionary swap ([`EpochHandle::publish`]) never lands mid-chunk:
//! each worker checks the handle **between** chunks and adopts a newly
//! published snapshot at the chunk boundary, emitting [`Event::Epoch`]
//! first so the client can attribute every subsequent match to the new
//! epoch. A chunk already dequeued keeps the snapshot it pinned — matches
//! are exact w.r.t. the epoch their chunk started in (DESIGN.md §10).
//! Static deployments pass a plain `Arc<StaticMatcher>` to
//! [`ShardedService::start`], which wraps it as a never-swapped epoch 0.
//!
//! ## Backpressure
//!
//! Every queue is bounded. When a shard queue is full, [`Session::push`]
//! blocks (recording a stall) and [`Session::try_push`] returns
//! [`TryPushError::WouldBlock`]; when a session's event queue is full, the
//! worker blocks before accepting more work from that shard. Nothing in
//! the service grows without bound: at most `queue_cap` chunks wait per
//! shard plus one in flight per worker, and at most `events_cap` result
//! batches wait per session.
//!
//! ## Supervision
//!
//! Shard workers are supervised at two levels. A panic **inside** one
//! chunk's match call (guarded by `catch_unwind`) aborts only the session
//! that owned the chunk: it receives a terminal [`Event::Failed`] instead
//! of silently hanging, and the worker keeps serving its other sessions. A
//! panic anywhere **else** in the worker loop unwinds to the supervisor,
//! which fails every in-flight session on that shard with
//! [`Event::Failed`], counts a `worker_restart`, and re-enters the loop
//! with fresh state — the shard keeps accepting new sessions. Failed
//! sessions are also counted as closed, so `sessions_opened ==
//! sessions_closed` holds on every path.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use pdm_core::dict::Sym;
use pdm_core::static1d::StaticMatcher;
use pdm_dict::{EpochHandle, Snapshot};
use pdm_pram::{CostModel, Ctx, ExecPolicy};

use crate::metrics::{GlobalMetrics, GlobalSnapshot, SessionCounters, SessionSnapshot};
use crate::stream::{StreamMatch, StreamMatcher};

/// Tuning knobs for [`ShardedService::start`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Shard threads. Each owns the sessions pinned to it. Default: number
    /// of available CPUs.
    pub workers: usize,
    /// Bounded per-shard job-queue capacity (chunks waiting per shard).
    pub queue_cap: usize,
    /// Bounded per-session event-queue capacity (match batches waiting for
    /// the client to drain).
    pub events_cap: usize,
    /// Execution policy *inside* one chunk's match call. Default `Seq`:
    /// with many sessions, parallelism across shards beats parallelism
    /// within a chunk.
    pub exec: ExecPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_cap: 16,
            events_cap: 1024,
            exec: ExecPolicy::Seq,
        }
    }
}

/// What a session's worker sends back to its client handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Occurrences ending in one pushed chunk (non-empty; chunks with no
    /// matches produce no event).
    Matches(Vec<StreamMatch>),
    /// Absolute stream offset consumed so far, emitted after every chunk —
    /// only for sessions opened with [`SessionOptions::progress`]. Every
    /// match ending at or before this offset has already been emitted.
    Progress(u64),
    /// The session adopted a newly published dictionary epoch at a chunk
    /// boundary. Every [`Event::Matches`] after this event (until the next
    /// `Epoch`) was found against the named epoch; `max_pattern_len` is the
    /// new epoch's `m` (a resuming client must size its replay tail to it).
    Epoch { epoch: u64, max_pattern_len: u32 },
    /// The session's worker crashed; the session is dead and no further
    /// events follow. The payload describes the failure.
    Failed(String),
    /// The session finished; no further events follow.
    Closed(SessionSummary),
}

/// Options for [`ShardedService::open_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionOptions {
    /// Absolute stream offset the session starts at (for resumed streams;
    /// see [`StreamMatcher::resume_at`]).
    pub start_offset: u64,
    /// Emit [`Event::Progress`] after every chunk.
    pub progress: bool,
}

/// Final accounting for a closed session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionSummary {
    pub consumed: u64,
    pub chunks: u64,
    pub matches: u64,
}

/// Error from [`Session::push`]: the service shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError;

/// Error from [`Session::try_push`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError {
    /// The shard queue is full — backpressure. The chunk is handed back.
    WouldBlock(Vec<Sym>),
    /// The service shut down. The chunk is handed back.
    Closed(Vec<Sym>),
}

/// Callback a shard worker invokes after delivering events for a session
/// (see [`ShardedService::open_with_notify`]). Reactor threads hang their
/// poll-loop wakeup here; it must be cheap and non-blocking.
pub type SessionNotify = Arc<dyn Fn() + Send + Sync>;

enum Job {
    Open {
        id: u64,
        events: Sender<Event>,
        counters: Arc<SessionCounters>,
        opts: SessionOptions,
        notify: Option<SessionNotify>,
    },
    Chunk {
        id: u64,
        data: Vec<Sym>,
    },
    Close {
        id: u64,
    },
}

/// Client handle for one stream. Push chunks; drain [`Event`]s; close for
/// a [`SessionSummary`]. Dropping without closing sends a best-effort
/// close.
pub struct Session {
    id: u64,
    jobs: Sender<Job>,
    events: Receiver<Event>,
    counters: Arc<SessionCounters>,
    global: Arc<GlobalMetrics>,
    finished: bool,
}

impl Session {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Submit a chunk, blocking while the shard queue is full.
    pub fn push(&self, data: Vec<Sym>) -> Result<(), PushError> {
        assert!(!self.finished, "push after finish/close");
        self.global.enqueued();
        if self.jobs.is_full() {
            self.global.record_stall();
        }
        match self.jobs.send(Job::Chunk { id: self.id, data }) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.global.dequeued();
                Err(PushError)
            }
        }
    }

    /// Submit a chunk without blocking; a full shard queue yields
    /// [`TryPushError::WouldBlock`] with the chunk handed back.
    pub fn try_push(&self, data: Vec<Sym>) -> Result<(), TryPushError> {
        assert!(!self.finished, "push after finish/close");
        self.global.enqueued();
        match self.jobs.try_send(Job::Chunk { id: self.id, data }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(Job::Chunk { data, .. })) => {
                self.global.dequeued();
                self.global.record_stall();
                Err(TryPushError::WouldBlock(data))
            }
            Err(TrySendError::Disconnected(Job::Chunk { data, .. })) => {
                self.global.dequeued();
                Err(TryPushError::Closed(data))
            }
            Err(_) => unreachable!("chunk jobs come back as chunk jobs"),
        }
    }

    /// Blocking receive of the next event; `None` once the channel is
    /// closed (after [`Event::Closed`] or service shutdown).
    pub fn next_event(&self) -> Option<Event> {
        self.events.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_next_event(&self) -> Option<Event> {
        self.events.try_recv().ok()
    }

    /// A clone of the event receiver, for draining from another thread
    /// (e.g. a connection's writer half) while this handle keeps pushing.
    pub fn events_handle(&self) -> Receiver<Event> {
        self.events.clone()
    }

    /// Declare end-of-stream. Idempotent; events may still be pending.
    ///
    /// Blocks while the shard queue is full — only safe when *another*
    /// thread drains [`Self::events_handle`] (as the threaded TCP server
    /// does); single-threaded callers should use [`Self::close`], which
    /// drains while it waits.
    pub fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            let _ = self.jobs.send(Job::Close { id: self.id });
        }
    }

    /// Non-blocking [`Self::finish`]: `false` means the shard queue is
    /// full and the close marker was **not** enqueued — retry later (the
    /// reactor retries each tick while draining events in between, which
    /// is what unjams the worker). A dead service counts as finished.
    pub fn try_finish(&mut self) -> bool {
        if self.finished {
            return true;
        }
        match self.jobs.try_send(Job::Close { id: self.id }) {
            Ok(()) => {
                self.finished = true;
                true
            }
            Err(TrySendError::Full(_)) => false,
            Err(TrySendError::Disconnected(_)) => {
                self.finished = true;
                true
            }
        }
    }

    /// Finish and drain: returns all remaining matches plus the summary.
    /// The summary is `None` if the service died mid-close or the session
    /// failed ([`Event::Failed`]).
    pub fn close(mut self) -> (Vec<StreamMatch>, Option<SessionSummary>) {
        self.finished = true;
        let mut matches = Vec::new();
        // Enqueue the close marker without deadlocking: the shard queue
        // may be full while its worker is blocked on *our* event queue,
        // so drain events between send attempts.
        let mut close_msg = Some(Job::Close { id: self.id });
        while let Some(msg) = close_msg.take() {
            match self.jobs.try_send(msg) {
                Ok(()) => {}
                Err(TrySendError::Full(msg)) => {
                    close_msg = Some(msg);
                    match self
                        .events
                        .recv_timeout(std::time::Duration::from_millis(5))
                    {
                        Ok(Event::Matches(mut m)) => matches.append(&mut m),
                        Ok(Event::Progress(_)) | Ok(Event::Epoch { .. }) => {}
                        Ok(Event::Failed(_)) => return (matches, None),
                        Ok(Event::Closed(s)) => return (matches, Some(s)),
                        Err(_) => {}
                    }
                }
                Err(TrySendError::Disconnected(_)) => return (matches, None),
            }
        }
        let mut summary = None;
        while let Ok(ev) = self.events.recv() {
            match ev {
                Event::Matches(mut m) => matches.append(&mut m),
                Event::Progress(_) | Event::Epoch { .. } => {}
                Event::Failed(_) => break,
                Event::Closed(s) => {
                    summary = Some(s);
                    break;
                }
            }
        }
        (matches, summary)
    }

    /// This session's counters (updated by its worker).
    pub fn metrics(&self) -> SessionSnapshot {
        self.counters.snapshot()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.finished {
            self.finished = true;
            // Best effort — never block in drop.
            let _ = self.jobs.try_send(Job::Close { id: self.id });
        }
    }
}

/// The service: shared dictionary epochs + shard workers + bounded queues.
pub struct ShardedService {
    handle: Arc<EpochHandle>,
    shards: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    global: Arc<GlobalMetrics>,
    next_id: AtomicU64,
    events_cap: usize,
}

impl ShardedService {
    /// Spawn `cfg.workers` shard threads over a fixed dictionary, wrapped
    /// as a never-swapped epoch 0.
    pub fn start(dict: Arc<StaticMatcher>, cfg: ServiceConfig) -> Self {
        Self::start_versioned(
            EpochHandle::new(Arc::new(Snapshot::from_static(0, dict))),
            cfg,
        )
    }

    /// Spawn `cfg.workers` shard threads over a live-updatable dictionary.
    /// Publishing a new snapshot through `handle` swaps every session at
    /// its next chunk boundary (see module docs).
    pub fn start_versioned(handle: Arc<EpochHandle>, cfg: ServiceConfig) -> Self {
        let workers = cfg.workers.max(1);
        let global = Arc::new(GlobalMetrics::default());
        let mut shards = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = bounded::<Job>(cfg.queue_cap.max(1));
            let handle = Arc::clone(&handle);
            let global = Arc::clone(&global);
            let exec = cfg.exec.clone();
            let h = std::thread::Builder::new()
                .name(format!("pdm-shard-{w}"))
                .spawn(move || worker_loop(rx, handle, exec, global))
                .expect("spawn shard worker");
            shards.push(tx);
            handles.push(h);
        }
        Self {
            handle,
            shards,
            handles,
            global,
            next_id: AtomicU64::new(0),
            events_cap: cfg.events_cap.max(1),
        }
    }

    /// The epoch slot sessions read from (publish here to swap).
    pub fn epoch_handle(&self) -> &Arc<EpochHandle> {
        &self.handle
    }

    /// Pin the currently published dictionary snapshot.
    pub fn current(&self) -> Arc<Snapshot> {
        self.handle.load()
    }

    /// Open a new session, pinned to shard `id % workers`.
    pub fn open(&self) -> Session {
        self.open_with(SessionOptions::default())
    }

    /// Open a session with explicit [`SessionOptions`] (resume offset,
    /// progress events).
    pub fn open_with(&self, opts: SessionOptions) -> Session {
        self.open_with_notify(opts, None)
    }

    /// Open a session whose worker calls `notify` after delivering events
    /// (match batches, progress, epoch markers, failure, close). Readiness
    /// -driven callers use this to wake their poll loop instead of
    /// blocking on the event channel.
    pub fn open_with_notify(&self, opts: SessionOptions, notify: Option<SessionNotify>) -> Session {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shard = (id as usize) % self.shards.len();
        let (ev_tx, ev_rx) = bounded::<Event>(self.events_cap);
        let counters = Arc::new(SessionCounters::default());
        let opened = self.shards[shard].send(Job::Open {
            id,
            events: ev_tx,
            counters: Arc::clone(&counters),
            opts,
            notify,
        });
        assert!(opened.is_ok(), "shard worker alive while service alive");
        self.global.session_opened();
        Session {
            id,
            jobs: self.shards[shard].clone(),
            events: ev_rx,
            counters,
            global: Arc::clone(&self.global),
            finished: false,
        }
    }

    /// Service-wide counters.
    pub fn metrics(&self) -> GlobalSnapshot {
        self.global.snapshot()
    }

    /// The live counter registry (for in-crate recording, e.g. the server).
    pub(crate) fn global_metrics(&self) -> &Arc<GlobalMetrics> {
        &self.global
    }

    /// Drop the shard queues and join the workers. All sessions must be
    /// closed/dropped first (their queue handles keep workers alive).
    pub fn shutdown(mut self) {
        self.shards.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ShardedService {
    fn drop(&mut self) {
        // Senders drop here; workers exit once every session handle is
        // gone too. Do not join — a live Session would deadlock us.
        self.shards.clear();
    }
}

struct WorkerSession {
    m: StreamMatcher<Snapshot>,
    events: Sender<Event>,
    counters: Arc<SessionCounters>,
    progress: bool,
    notify: Option<SessionNotify>,
}

impl WorkerSession {
    /// Deliver one event, then ping the session's notify hook (if any) so
    /// a poll-loop owner wakes up to drain it.
    fn send(&self, ev: Event) {
        let _ = self.events.send(ev);
        if let Some(n) = &self.notify {
            n();
        }
    }
}

/// Abort a session with a terminal [`Event::Failed`], keeping the
/// opened/closed accounting consistent.
fn fail_session(global: &GlobalMetrics, s: WorkerSession, why: &str) {
    global.session_failed();
    global.session_closed();
    s.send(Event::Failed(why.to_string()));
}

/// Supervisor: run the worker; if it panics, fail its in-flight sessions,
/// count a restart, and re-enter with fresh state. The shard's job queue
/// survives the crash, so queued and future sessions keep being served.
fn worker_loop(
    rx: Receiver<Job>,
    handle: Arc<EpochHandle>,
    exec: ExecPolicy,
    global: Arc<GlobalMetrics>,
) {
    let mut sessions: HashMap<u64, WorkerSession> = HashMap::new();
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            run_worker(&rx, &handle, &exec, &global, &mut sessions)
        }));
        match run {
            Ok(()) => break, // all job senders dropped: clean shutdown
            Err(_) => {
                global.worker_restarted();
                for (_, s) in sessions.drain() {
                    fail_session(&global, s, "shard worker crashed; session aborted");
                }
            }
        }
    }
}

fn run_worker(
    rx: &Receiver<Job>,
    handle: &Arc<EpochHandle>,
    exec: &ExecPolicy,
    global: &Arc<GlobalMetrics>,
    sessions: &mut HashMap<u64, WorkerSession>,
) {
    let ctx = Ctx {
        exec: exec.clone(),
        cost: Arc::new(CostModel::new()),
    };
    while let Ok(job) = rx.recv() {
        match job {
            Job::Open {
                id,
                events,
                counters,
                opts,
                notify,
            } => {
                let mut m = StreamMatcher::new(handle.load());
                if opts.start_offset > 0 {
                    m.resume_at(opts.start_offset);
                }
                sessions.insert(
                    id,
                    WorkerSession {
                        m,
                        events,
                        counters,
                        progress: opts.progress,
                        notify,
                    },
                );
            }
            Job::Chunk { id, data } => {
                // Keep the gauge exact even if this job faults below.
                global.dequeued();
                // May panic (fault injection / latent bug): unwinds to the
                // supervisor, which fails every session on this shard.
                crate::faults::hook_worker_loop();
                if let Some(s) = sessions.get_mut(&id) {
                    // Chunk-boundary epoch adoption: a snapshot published
                    // since the last chunk is swapped in *before* matching,
                    // with the marker event first, so every match after the
                    // marker belongs to the new epoch. A panic here (fault
                    // injection) unwinds to the supervisor mid-swap.
                    let cur = handle.load();
                    if cur.epoch() != s.m.dict().epoch() {
                        crate::faults::hook_epoch_swap();
                        let marker = Event::Epoch {
                            epoch: cur.epoch(),
                            max_pattern_len: cur.max_pattern_len() as u32,
                        };
                        s.m.swap_dict(cur);
                        global.epoch_adopted();
                        s.send(marker);
                    }
                    // Per-chunk guard: a panic in the match call costs one
                    // session, not the worker.
                    let found = catch_unwind(AssertUnwindSafe(|| {
                        crate::faults::hook_worker_chunk();
                        s.m.push(&ctx, &data)
                    }));
                    match found {
                        Ok(found) => {
                            s.counters
                                .record_chunk(data.len() as u64, found.len() as u64);
                            global.record_chunk_done(data.len() as u64, found.len() as u64);
                            if !found.is_empty() {
                                // Full event queue = slow client; block
                                // (bounded memory) and count the stall.
                                if s.events.is_full() {
                                    global.record_stall();
                                }
                                s.send(Event::Matches(found));
                            }
                            if s.progress {
                                s.send(Event::Progress(s.m.consumed()));
                            }
                        }
                        Err(_) => {
                            let s = sessions.remove(&id).expect("session was present");
                            fail_session(
                                global,
                                s,
                                "match worker panicked on a chunk; session aborted",
                            );
                        }
                    }
                }
            }
            Job::Close { id } => {
                if let Some(s) = sessions.remove(&id) {
                    let snap = s.counters.snapshot();
                    // Count the close *before* emitting the summary event,
                    // so a client that saw the summary also sees the count.
                    global.session_closed();
                    s.send(Event::Closed(SessionSummary {
                        consumed: s.m.consumed(),
                        chunks: snap.chunks,
                        matches: snap.matches,
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::dict::{symbolize, to_symbols};

    fn service(cfg: ServiceConfig) -> ShardedService {
        let ctx = Ctx::seq();
        let dict =
            Arc::new(StaticMatcher::build(&ctx, &symbolize(&["he", "she", "hers"])).unwrap());
        ShardedService::start(dict, cfg)
    }

    #[test]
    fn single_session_roundtrip() {
        let svc = service(ServiceConfig {
            workers: 2,
            ..Default::default()
        });
        let s = svc.open();
        let t = to_symbols("ushers");
        s.push(t[..3].to_vec()).unwrap();
        s.push(t[3..].to_vec()).unwrap();
        let (matches, summary) = s.close();
        let starts: Vec<u64> = matches.iter().map(|m| m.start).collect();
        assert_eq!(starts, vec![1, 2, 2]); // she@1, he@2, hers@2
        let summary = summary.unwrap();
        assert_eq!(summary.consumed, 6);
        assert_eq!(summary.chunks, 2);
        assert_eq!(summary.matches, 3);
        svc.shutdown();
    }

    #[test]
    fn many_sessions_are_isolated() {
        let svc = service(ServiceConfig {
            workers: 3,
            queue_cap: 4,
            ..Default::default()
        });
        let sessions: Vec<Session> = (0..8).map(|_| svc.open()).collect();
        for (k, s) in sessions.iter().enumerate() {
            // Session k streams k+1 copies of "she", one symbol at a time.
            let text = to_symbols(&"she".repeat(k + 1));
            for sym in text.chunks(1) {
                s.push(sym.to_vec()).unwrap();
            }
        }
        for (k, s) in sessions.into_iter().enumerate() {
            let (matches, summary) = s.close();
            // Each "she" contributes she + he.
            assert_eq!(matches.len(), 2 * (k + 1), "session {k}");
            assert_eq!(summary.unwrap().consumed, 3 * (k + 1) as u64);
        }
        let g = svc.metrics();
        assert_eq!(g.sessions_opened, 8);
        assert_eq!(g.sessions_closed, 8);
        assert_eq!(g.queue_depth, 0);
        svc.shutdown();
    }

    #[test]
    fn try_push_reports_would_block() {
        // 1 worker, tiny queue, and the worker is jammed: its first
        // session never drains its single-slot event queue, so a second
        // matching chunk blocks the worker, letting the job queue fill.
        let svc = service(ServiceConfig {
            workers: 1,
            queue_cap: 1,
            events_cap: 1,
            exec: ExecPolicy::Seq,
        });
        let s = svc.open();
        let chunk = to_symbols("she");
        // Worker stalls once two match batches exist and nobody drains.
        let mut saw_would_block = false;
        let mut accepted = 0u64;
        for _ in 0..64 {
            match s.try_push(chunk.clone()) {
                Ok(()) => accepted += 1,
                Err(TryPushError::WouldBlock(_)) => {
                    saw_would_block = true;
                    break;
                }
                Err(TryPushError::Closed(_)) => panic!("service died"),
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(saw_would_block, "bounded queue never pushed back");
        assert!(svc.metrics().stalls > 0);
        // Drain and finish cleanly.
        let (matches, _) = s.close();
        assert!(matches.len() as u64 >= accepted.min(2));
        svc.shutdown();
    }

    #[test]
    fn resumed_session_reports_absolute_offsets() {
        let svc = service(ServiceConfig::default());
        let s = svc.open_with(SessionOptions {
            start_offset: 1000,
            progress: true,
        });
        s.push(to_symbols("ushers")).unwrap();
        let mut starts = Vec::new();
        let (matches, summary) = loop {
            match s.next_event().expect("service alive") {
                Event::Matches(m) => starts.extend(m.iter().map(|o| o.start)),
                Event::Progress(consumed) => {
                    // The progress event arrives after the chunk's matches.
                    assert_eq!(consumed, 1006);
                    break s.close();
                }
                ev => panic!("unexpected event {ev:?}"),
            }
        };
        assert!(matches.is_empty());
        starts.sort_unstable();
        assert_eq!(starts, vec![1001, 1002, 1002]); // she, he, hers
        assert_eq!(summary.unwrap().consumed, 1006);
        svc.shutdown();
    }
}
