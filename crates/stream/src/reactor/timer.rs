//! Hashed timer wheel for connection idle timeouts.
//!
//! One live entry per connection; cancellation is lazy (tokens are never
//! reused, so an entry whose token no longer resolves to a connection is
//! simply dropped at expiry). Entries further out than one wheel
//! revolution wrap: they are re-inserted when their slot comes around
//! with the deadline still in the future.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
struct Entry {
    deadline: Instant,
    token: usize,
}

pub(crate) struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    granularity: Duration,
    cursor: usize,
    /// Start of the current slot's window; advances by `granularity` per
    /// tick.
    cursor_time: Instant,
    len: usize,
}

impl TimerWheel {
    pub fn new(granularity: Duration, slots: usize, now: Instant) -> TimerWheel {
        TimerWheel {
            slots: vec![Vec::new(); slots.max(2)],
            granularity: granularity.max(Duration::from_millis(1)),
            cursor: 0,
            cursor_time: now,
            len: 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arm `token` to fire at `deadline` (rounded up to the wheel's
    /// granularity).
    pub fn insert(&mut self, deadline: Instant, token: usize) {
        let delta = deadline.saturating_duration_since(self.cursor_time);
        // Slot `cursor + 1` is the next one drained (at `cursor_time +
        // granularity`), so a delta within one granule goes there — never
        // into the cursor slot, which was already drained this revolution.
        let ticks = 1 + (delta.as_nanos() / self.granularity.as_nanos().max(1)) as usize;
        let slot = (self.cursor + ticks) % self.slots.len();
        self.slots[slot].push(Entry { deadline, token });
        self.len += 1;
    }

    /// How long until the next slot boundary could fire something;
    /// `None` when the wheel is empty (no need to wake for timers).
    pub fn next_wait(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let boundary = self.cursor_time + self.granularity;
        Some(boundary.saturating_duration_since(now))
    }

    /// Advance to `now`, appending every due token to `expired`.
    pub fn tick(&mut self, now: Instant, expired: &mut Vec<usize>) {
        let mut carried: Vec<Entry> = Vec::new();
        while self.cursor_time + self.granularity <= now {
            self.cursor_time += self.granularity;
            self.cursor = (self.cursor + 1) % self.slots.len();
            // Drain into a scratch list first: a wrapped (not-yet-due)
            // entry re-inserts into this same wheel, possibly this slot.
            carried.append(&mut self.slots[self.cursor]);
            for e in carried.drain(..) {
                self.len -= 1;
                if e.deadline <= now {
                    expired.push(e.token);
                } else {
                    self.insert(e.deadline, e.token);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_at_deadline() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(Duration::from_millis(10), 8, t0);
        w.insert(t0 + Duration::from_millis(25), 7);
        let mut fired = Vec::new();
        w.tick(t0 + Duration::from_millis(20), &mut fired);
        assert!(fired.is_empty(), "fired early: {fired:?}");
        w.tick(t0 + Duration::from_millis(40), &mut fired);
        assert_eq!(fired, vec![7]);
        assert!(w.is_empty());
        fired.clear();
        w.tick(t0 + Duration::from_millis(200), &mut fired);
        assert!(fired.is_empty(), "re-fired: {fired:?}");
    }

    #[test]
    fn wrapped_entries_survive_revolutions() {
        let t0 = Instant::now();
        // 8 slots × 10ms = one 80ms revolution; arm at 250ms (3 wraps).
        let mut w = TimerWheel::new(Duration::from_millis(10), 8, t0);
        w.insert(t0 + Duration::from_millis(250), 1);
        let mut fired = Vec::new();
        for ms in (10..=240).step_by(10) {
            w.tick(t0 + Duration::from_millis(ms), &mut fired);
            assert!(fired.is_empty(), "early at {ms}ms");
        }
        w.tick(t0 + Duration::from_millis(260), &mut fired);
        assert_eq!(fired, vec![1]);
    }

    #[test]
    fn next_wait_tracks_emptiness() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(Duration::from_millis(10), 4, t0);
        assert_eq!(w.next_wait(t0), None);
        w.insert(t0 + Duration::from_millis(5), 1);
        let wait = w.next_wait(t0).unwrap();
        assert!(wait <= Duration::from_millis(10));
        let mut fired = Vec::new();
        w.tick(t0 + Duration::from_millis(50), &mut fired);
        assert_eq!(fired, vec![1]);
        assert_eq!(w.next_wait(t0 + Duration::from_millis(50)), None);
    }

    #[test]
    fn many_tokens_on_one_slot() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(Duration::from_millis(10), 4, t0);
        for tok in 0..100 {
            w.insert(t0 + Duration::from_millis(15), tok);
        }
        let mut fired = Vec::new();
        w.tick(t0 + Duration::from_millis(30), &mut fired);
        fired.sort_unstable();
        assert_eq!(fired, (0..100).collect::<Vec<_>>());
    }
}
