//! Readiness-driven serving tier: N reactor threads own all connections.
//!
//! The threaded server ([`crate::server`]) spends two OS threads per
//! connection; this tier replaces them with a fixed pool of reactors,
//! each running an epoll/poll(2) event loop (via the vendored `mio`
//! shim). One reactor owns a connection for its whole life: it decodes
//! length-prefixed frames incrementally from a per-connection read
//! buffer, feeds the existing [`ShardedService`] queues, and writes
//! replies interest-driven (EPOLLOUT is subscribed only after a partial
//! write). Tens of thousands of concurrent connections cost memory, not
//! threads.
//!
//! ## Semantics contract
//!
//! The reactor preserves the threaded server's observable behaviour —
//! the chaos and lifecycle suites run unchanged against both modes:
//!
//! * `opened == closed` accounting: every session opened gets a close
//!   marker on every path, including socket failures (the `Dead` state
//!   retries a non-blocking close each tick until it lands).
//! * One writer per connection: all frames leave through a single
//!   ordered output buffer, so an `ERROR` can never interleave bytes
//!   with a concurrently written `MATCH` frame.
//! * Backpressure without blocking: the reactor thread never blocks on
//!   a shard queue. A full queue parks the chunk in `pending_chunk`,
//!   drops read interest (so the kernel buffer, then the remote sender,
//!   fill up), and retries on a 1 ms tick.
//! * Load shedding, read/idle timeouts (timer wheel), graceful drain,
//!   and `DICT_*`/epoch frames behave exactly as in threaded mode.
//!
//! ## Wakeup paths
//!
//! A reactor sleeps in `poll()` and is woken by (a) socket readiness,
//! (b) a [`Waker`] fired from a shard worker after it delivers session
//! events (coalesced through a per-session atomic flag), (c) a waker
//! fired by reactor 0 handing off an accepted connection, or (d) the
//! timer wheel / pending-retry deadline.

mod timer;

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use mio::{Interest, Token, Waker};

use crate::admin::DictAdmin;
use crate::faults::{self, ConnFault, WaitFault};
use crate::metrics::GlobalMetrics;
use crate::proto::{
    decode_hello, encode_ack, encode_epoch, encode_hello_ack, encode_match, encode_stats,
    encode_summary, write_frame, EpochChange, FrameDecoder, TAG_ACK, TAG_CHUNK, TAG_CLOSE,
    TAG_DICT_ADD, TAG_DICT_COMMIT, TAG_DICT_INFO, TAG_DICT_REMOVE, TAG_EPOCH, TAG_ERROR, TAG_HELLO,
    TAG_HELLO_ACK, TAG_MATCH, TAG_STATS, TAG_STATS_RESP, TAG_SUMMARY,
};
use crate::server::{
    conn_error_message, handle_dict_frame, record_conn_error, shed, ConnRegistry, ServerConfig,
};
use crate::service::{Event, Session, SessionNotify, SessionOptions, ShardedService, TryPushError};
use timer::TimerWheel;

const TOK_WAKER: usize = 0;
const TOK_LISTENER: usize = 1;
/// Connection tokens count up from here and are never reused, so a stale
/// token (in the ready list or timer wheel) simply misses the map.
const FIRST_CONN_TOKEN: usize = 2;

const EVENTS_CAP: usize = 1024;
/// Per-readiness-event read cap: a firehose connection yields the thread
/// after this many bytes; level-triggered epoll re-reports it next wait.
const READ_BURST: usize = 128 * 1024;
/// Stop pumping session events into the output buffer past this size, so
/// the bounded event channel keeps backpressuring the shard worker.
const OUT_HIGH_WATER: usize = 256 * 1024;
/// Wait cap with nothing pending: bounds stop/halt latency.
const IDLE_WAIT: Duration = Duration::from_millis(250);
/// Wait cap while a chunk/close is parked on a full shard queue.
const RETRY_WAIT: Duration = Duration::from_millis(1);
/// Per-sweep budget of *failed* retries of parked operations. When far
/// more connections are parked than the shard queues have slots, an
/// uncapped sweep is O(parked) failed lock attempts per wakeup — at
/// thousands of connections that burns the CPU the workers need. The cap
/// makes a saturated sweep O(budget); rotation keeps it fair.
const RETRY_FAIL_BUDGET: usize = 16;
const ACCEPT_BACKOFF_BASE: Duration = Duration::from_millis(1);

/// Tokens whose sessions have undelivered events, pushed by shard
/// workers (via the session notify hook) and drained by the reactor.
struct ReadyList {
    tokens: Mutex<Vec<usize>>,
    waker: Arc<Waker>,
}

impl ReadyList {
    fn push(&self, token: usize) {
        let mut t = self.tokens.lock().unwrap();
        let was_empty = t.is_empty();
        t.push(token);
        drop(t);
        // First entry since the last drain wakes the reactor; later ones
        // coalesce into the same wakeup.
        if was_empty {
            let _ = self.waker.wake();
        }
    }

    fn drain_into(&self, out: &mut Vec<usize>) {
        out.append(&mut self.tokens.lock().unwrap());
    }
}

/// Handle held by [`crate::server::Server`]: join/halt the pool.
pub(crate) struct ReactorPool {
    threads: Vec<JoinHandle<()>>,
    wakers: Vec<Arc<Waker>>,
    halt: Arc<AtomicBool>,
}

impl ReactorPool {
    /// Spawn `n` reactor threads. Reactor 0 owns the listener and deals
    /// accepted connections round-robin to the pool (including itself).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        listener: TcpListener,
        service: Arc<ShardedService>,
        admin: Option<Arc<DictAdmin>>,
        cfg: ServerConfig,
        stop: Arc<AtomicBool>,
        live: Arc<AtomicUsize>,
        registry: ConnRegistry,
        n: usize,
    ) -> io::Result<ReactorPool> {
        let n = n.max(1);
        let halt = Arc::new(AtomicBool::new(false));
        let conn_ids = Arc::new(AtomicU64::new(0));

        let mut polls = Vec::with_capacity(n);
        let mut wakers = Vec::with_capacity(n);
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let poll = mio::Poll::new()?;
            let waker = Arc::new(Waker::new(&poll, Token(TOK_WAKER))?);
            let (tx, rx) = unbounded::<TcpStream>();
            polls.push(poll);
            wakers.push(waker);
            txs.push(tx);
            rxs.push(rx);
        }
        polls[0].register(&listener, Token(TOK_LISTENER), Interest::READABLE)?;
        let peers: Vec<(Sender<TcpStream>, Arc<Waker>)> =
            txs.into_iter().zip(wakers.iter().cloned()).collect();

        let granularity = cfg
            .read_timeout
            .map(|t| (t / 8).clamp(Duration::from_millis(1), Duration::from_millis(100)))
            .unwrap_or(Duration::from_millis(100));

        let mut threads: Vec<JoinHandle<()>> = Vec::with_capacity(n);
        let mut listener = Some(listener);
        for (idx, (poll, inbox)) in polls.into_iter().zip(rxs).enumerate() {
            let reactor = Reactor {
                idx,
                poll,
                events: mio::Events::with_capacity(EVENTS_CAP),
                waker: Arc::clone(&wakers[idx]),
                ready: Arc::new(ReadyList {
                    tokens: Mutex::new(Vec::new()),
                    waker: Arc::clone(&wakers[idx]),
                }),
                listener: if idx == 0 { listener.take() } else { None },
                listener_registered: idx == 0,
                peers: if idx == 0 { peers.clone() } else { Vec::new() },
                rr: 0,
                inbox,
                service: Arc::clone(&service),
                admin: admin.clone(),
                global: Arc::clone(service.global_metrics()),
                cfg: cfg.clone(),
                stop: Arc::clone(&stop),
                halt: Arc::clone(&halt),
                live: Arc::clone(&live),
                registry: Arc::clone(&registry),
                conn_ids: Arc::clone(&conn_ids),
                conns: HashMap::new(),
                next_token: FIRST_CONN_TOKEN,
                timers: TimerWheel::new(granularity, 64, Instant::now()),
                timer_scratch: Vec::new(),
                ready_scratch: Vec::new(),
                event_scratch: Vec::new(),
                pending: Vec::new(),
                accept_cooldown: None,
                accept_backoff: ACCEPT_BACKOFF_BASE,
            };
            let spawned = std::thread::Builder::new()
                .name(format!("pdm-reactor-{idx}"))
                .spawn(move || reactor.run());
            match spawned {
                Ok(h) => threads.push(h),
                Err(e) => {
                    // Unwind the reactors already running.
                    halt.store(true, Ordering::SeqCst);
                    for w in &wakers {
                        let _ = w.wake();
                    }
                    for h in threads {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(ReactorPool {
            threads,
            wakers,
            halt,
        })
    }

    pub(crate) fn wake_all(&self) {
        for w in &self.wakers {
            let _ = w.wake();
        }
    }

    /// Block until every reactor exits (they exit on their own once the
    /// stop flag is set and their connections have drained).
    pub(crate) fn join(&mut self) {
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }

    /// Hard stop: reactors tear down remaining connections best-effort.
    pub(crate) fn halt_and_join(&mut self) {
        self.halt.store(true, Ordering::SeqCst);
        self.wake_all();
        self.join();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// No session yet: waiting for the first frame (or a clean EOF).
    AwaitFirst,
    /// Session open; decoding chunks and pumping events.
    Streaming,
    /// Read side done, close marker queued (or pending); waiting for the
    /// terminal `Closed`/`Failed` event.
    Draining,
    /// Terminal frame is in the output buffer; close once it flushes.
    Closing,
    /// Socket is unusable but the session's close marker has not been
    /// enqueued yet: no more I/O, retry `try_finish` each tick so the
    /// `opened == closed` invariant still lands.
    Dead,
}

struct Conn {
    sock: TcpStream,
    token: usize,
    registry_id: u64,
    state: ConnState,
    decoder: FrameDecoder,
    /// Single ordered output buffer — the "one writer" that keeps error
    /// frames from interleaving with match frames.
    out: Vec<u8>,
    out_pos: usize,
    /// Current selector registration (`None` = deregistered).
    registered: Option<Interest>,
    session: Option<Session>,
    ack_every: u64,
    chunks_seen: u64,
    /// Chunk handed back by a full shard queue; gates further reads.
    pending_chunk: Option<Vec<u32>>,
    /// Close marker not yet enqueued (full shard queue).
    pending_close: bool,
    /// Reader-side failure to report instead of the summary (mirrors the
    /// threaded server's pending-error slot).
    pending_err: Option<String>,
    /// No more socket reads (EOF, `TAG_CLOSE`, or error).
    read_done: bool,
    last_activity: Instant,
    /// Set by the session notify hook; cleared when serviced. Coalesces
    /// worker wakeups so the ready list holds each token at most once.
    ready_flag: Arc<AtomicBool>,
}

impl Conn {
    fn backpressured(&self) -> bool {
        self.pending_chunk.is_some()
    }

    fn has_pending(&self) -> bool {
        self.pending_chunk.is_some() || self.pending_close || self.state == ConnState::Dead
    }
}

/// Queue one whole frame on the connection's output buffer.
fn queue_frame(conn: &mut Conn, tag: u8, payload: &[u8]) {
    write_frame(&mut conn.out, tag, payload).expect("Vec write is infallible");
}

struct Reactor {
    idx: usize,
    poll: mio::Poll,
    events: mio::Events,
    waker: Arc<Waker>,
    ready: Arc<ReadyList>,
    /// Reactor 0 only; dropped (and deregistered) on stop.
    listener: Option<TcpListener>,
    listener_registered: bool,
    /// Reactor 0 only: handoff channels + wakers for the whole pool.
    peers: Vec<(Sender<TcpStream>, Arc<Waker>)>,
    rr: usize,
    inbox: Receiver<TcpStream>,
    service: Arc<ShardedService>,
    admin: Option<Arc<DictAdmin>>,
    global: Arc<GlobalMetrics>,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
    halt: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    registry: ConnRegistry,
    conn_ids: Arc<AtomicU64>,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    timers: TimerWheel,
    timer_scratch: Vec<usize>,
    ready_scratch: Vec<usize>,
    event_scratch: Vec<(usize, bool, bool)>,
    /// Tokens to retry next tick (parked chunk/close, `Dead` conns).
    pending: Vec<usize>,
    accept_cooldown: Option<Instant>,
    accept_backoff: Duration,
}

impl Reactor {
    fn run(mut self) {
        loop {
            if self.halt.load(Ordering::SeqCst) {
                break;
            }
            if self.stop.load(Ordering::SeqCst) {
                self.close_listener();
                if self.conns.is_empty() && self.inbox.is_empty() {
                    break;
                }
            }

            let timeout = self.wait_timeout();
            match faults::hook_reactor_wait() {
                WaitFault::Eintr => {
                    // A signal interrupted the wait: zero-event wakeup,
                    // exactly what the shim reports for real EINTR.
                    self.global.reactor_wakeup(0);
                }
                fault => {
                    if fault == WaitFault::Spurious {
                        // Wake ourselves so the poll returns with nothing
                        // useful to do.
                        let _ = self.waker.wake();
                    }
                    match self.poll.poll(&mut self.events, Some(timeout)) {
                        Err(_) => self.global.reactor_wakeup(0),
                        Ok(()) => {
                            self.global.reactor_wakeup(self.events.len() as u64);
                            self.event_scratch.clear();
                            self.event_scratch.extend(
                                self.events
                                    .iter()
                                    .map(|e| (e.token().0, e.is_readable(), e.is_writable())),
                            );
                            let batch = std::mem::take(&mut self.event_scratch);
                            for &(tok, readable, writable) in &batch {
                                match tok {
                                    TOK_WAKER => {}
                                    TOK_LISTENER => {
                                        if readable {
                                            self.accept_burst();
                                        }
                                    }
                                    _ => {
                                        if readable || writable {
                                            self.service_conn(tok, readable);
                                        }
                                    }
                                }
                            }
                            self.event_scratch = batch;
                        }
                    }
                }
            }

            // Connections handed off by reactor 0.
            while let Ok(sock) = self.inbox.try_recv() {
                self.adopt(sock);
            }

            // Sessions whose workers delivered events since the last drain.
            self.ready_scratch.clear();
            self.ready.drain_into(&mut self.ready_scratch);
            let toks = std::mem::take(&mut self.ready_scratch);
            for &tok in &toks {
                self.service_conn(tok, false);
            }
            self.ready_scratch = toks;

            // Backpressured operations parked on full shard queues.
            // Budgeted: stop after RETRY_FAIL_BUDGET conns stayed parked,
            // and rotate the unswept remainder ahead of this sweep's
            // failures so every parked conn is retried eventually.
            if !self.pending.is_empty() {
                let toks = std::mem::take(&mut self.pending);
                let mut failures = 0usize;
                let mut it = toks.into_iter();
                for tok in it.by_ref() {
                    let parked_before = self.pending.len();
                    self.service_conn(tok, false);
                    if self.pending.len() > parked_before {
                        failures += 1;
                        if failures >= RETRY_FAIL_BUDGET {
                            break;
                        }
                    }
                }
                let rest: Vec<usize> = it.collect();
                if !rest.is_empty() {
                    let failed = std::mem::replace(&mut self.pending, rest);
                    self.pending.extend(failed);
                }
            }

            self.expire_timers();

            if self.accept_cooldown.is_some_and(|cd| Instant::now() >= cd) {
                self.accept_cooldown = None;
                self.reopen_listener();
                self.accept_burst();
            }
        }
        self.teardown();
    }

    fn wait_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut t = IDLE_WAIT;
        if !self.pending.is_empty() {
            t = t.min(RETRY_WAIT);
        }
        if let Some(d) = self.timers.next_wait(now) {
            t = t.min(d.max(Duration::from_millis(1)));
        }
        if let Some(cd) = self.accept_cooldown {
            t = t.min(
                cd.saturating_duration_since(now)
                    .max(Duration::from_millis(1)),
            );
        }
        t
    }

    // ---- accept path (reactor 0) -------------------------------------

    /// Satellite of the readiness design: drain `accept()` until
    /// `WouldBlock` on every listener readiness event, so one event never
    /// strands the rest of a connection burst behind the next wakeup.
    fn accept_burst(&mut self) {
        if self.accept_cooldown.is_some() || self.stop.load(Ordering::SeqCst) {
            return;
        }
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            if faults::hook_accept().is_some() {
                // Injected EMFILE-shaped accept failure.
                self.global.accept_retry();
                self.start_accept_cooldown();
                return;
            }
            match listener.accept() {
                Ok((sock, _peer)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_BASE;
                    if faults::hook_accept_overflow().is_some() {
                        // This arrival died in the accept queue (synthetic
                        // ECONNABORTED): skip it, keep draining the burst.
                        self.global.accept_retry();
                        continue;
                    }
                    if self.cfg.max_conns > 0
                        && self.live.load(Ordering::SeqCst) >= self.cfg.max_conns
                    {
                        self.global.conn_shed();
                        shed(sock);
                        continue;
                    }
                    self.live.fetch_add(1, Ordering::SeqCst);
                    self.dispatch(sock);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted | io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    // Aborted before accept: nothing to serve, burst not over.
                    self.global.accept_retry();
                    continue;
                }
                Err(_) => {
                    // Transient failure (EMFILE, ENFILE, …): back off. The
                    // cooldown parks the listener registration so the
                    // level-triggered event doesn't spin the loop.
                    self.global.accept_retry();
                    self.start_accept_cooldown();
                    return;
                }
            }
        }
    }

    /// Round-robin an accepted connection across the pool.
    fn dispatch(&mut self, sock: TcpStream) {
        let n = self.peers.len().max(1);
        let target = self.rr % n;
        self.rr = self.rr.wrapping_add(1);
        if target == self.idx || self.peers.is_empty() {
            self.adopt(sock);
            return;
        }
        let (tx, waker) = &self.peers[target];
        if tx.send(sock).is_ok() {
            let _ = waker.wake();
        } else {
            // Peer already exited (halt): undo the live count.
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn start_accept_cooldown(&mut self) {
        if self.listener_registered {
            if let Some(l) = self.listener.as_ref() {
                let _ = self.poll.deregister(l);
            }
            self.listener_registered = false;
        }
        self.accept_cooldown = Some(Instant::now() + self.accept_backoff);
        self.accept_backoff = (self.accept_backoff * 2).min(self.cfg.accept_backoff_max);
    }

    fn reopen_listener(&mut self) {
        if self.listener_registered || self.stop.load(Ordering::SeqCst) {
            return;
        }
        if let Some(l) = self.listener.as_ref() {
            if self
                .poll
                .register(l, Token(TOK_LISTENER), Interest::READABLE)
                .is_ok()
            {
                self.listener_registered = true;
            }
        }
    }

    fn close_listener(&mut self) {
        if let Some(l) = self.listener.take() {
            if self.listener_registered {
                let _ = self.poll.deregister(&l);
                self.listener_registered = false;
            }
        }
    }

    /// Take ownership of an accepted connection (already counted live).
    fn adopt(&mut self, sock: TcpStream) {
        sock.set_nodelay(true).ok();
        if sock.set_nonblocking(true).is_err() {
            self.live.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        let registry_id = self.conn_ids.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = sock.try_clone() {
            self.registry.lock().unwrap().insert(registry_id, clone);
        }
        if self
            .poll
            .register(&sock, Token(token), Interest::READABLE)
            .is_err()
        {
            self.registry.lock().unwrap().remove(&registry_id);
            self.live.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let now = Instant::now();
        if let Some(t) = self.cfg.read_timeout {
            self.timers.insert(now + t, token);
        }
        self.conns.insert(
            token,
            Conn {
                sock,
                token,
                registry_id,
                state: ConnState::AwaitFirst,
                decoder: FrameDecoder::new(),
                out: Vec::new(),
                out_pos: 0,
                registered: Some(Interest::READABLE),
                session: None,
                ack_every: 0,
                chunks_seen: 0,
                pending_chunk: None,
                pending_close: false,
                pending_err: None,
                read_done: false,
                last_activity: now,
                ready_flag: Arc::new(AtomicBool::new(false)),
            },
        );
    }

    // ---- per-connection state machine --------------------------------

    /// Service one connection end-to-end: read (if readable), retry
    /// parked operations, decode frames, pump session events, flush.
    fn service_conn(&mut self, tok: usize, readable: bool) {
        let Some(mut conn) = self.conns.remove(&tok) else {
            return; // stale token (ready list / timer) — already closed
        };
        conn.ready_flag.store(false, Ordering::Relaxed);
        match self.drive(&mut conn, readable) {
            Ok(()) => {
                self.update_interest(&mut conn);
                if conn.has_pending() {
                    self.pending.push(tok);
                }
                self.conns.insert(tok, conn);
            }
            Err(()) => self.destroy(conn),
        }
    }

    fn drive(&mut self, conn: &mut Conn, readable: bool) -> Result<(), ()> {
        if readable {
            self.read_socket(conn)?;
        }
        self.retry_ops(conn)?;
        self.process_frames(conn)?;
        self.handle_eof(conn)?;
        self.pump_and_flush(conn)
    }

    fn read_socket(&mut self, conn: &mut Conn) -> Result<(), ()> {
        if conn.read_done
            || conn.backpressured()
            || !matches!(conn.state, ConnState::AwaitFirst | ConnState::Streaming)
        {
            return Ok(());
        }
        let mut buf = [0u8; 16 * 1024];
        let mut total = 0usize;
        loop {
            match conn.sock.read(&mut buf) {
                Ok(0) => {
                    conn.read_done = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.decoder.feed(&buf[..n]);
                    total += n;
                    if total >= READ_BURST {
                        break; // fairness: level-triggered readiness re-arms
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return self.socket_failed(conn, e),
            }
        }
        Ok(())
    }

    /// Retry operations parked on a full shard queue (and drive `Dead`
    /// connections to their overdue close marker).
    fn retry_ops(&mut self, conn: &mut Conn) -> Result<(), ()> {
        if conn.state == ConnState::Dead {
            self.pump_events(conn); // discard events so the worker can move
            let done = match conn.session.as_mut() {
                Some(s) => s.try_finish(),
                None => true,
            };
            return if done { Err(()) } else { Ok(()) };
        }
        if let Some(data) = conn.pending_chunk.take() {
            let Some(sess) = conn.session.as_ref() else {
                return Ok(());
            };
            match sess.try_push(data) {
                Ok(()) => {}
                Err(TryPushError::WouldBlock(d)) => conn.pending_chunk = Some(d),
                Err(TryPushError::Closed(_)) => {
                    return self.conn_error(
                        conn,
                        io::Error::new(io::ErrorKind::BrokenPipe, "service shut down"),
                    );
                }
            }
        }
        if conn.pending_close {
            match conn.session.as_mut() {
                Some(sess) => {
                    if sess.try_finish() {
                        conn.pending_close = false;
                    }
                }
                None => conn.pending_close = false,
            }
        }
        Ok(())
    }

    fn process_frames(&mut self, conn: &mut Conn) -> Result<(), ()> {
        while matches!(conn.state, ConnState::AwaitFirst | ConnState::Streaming)
            && !conn.backpressured()
        {
            let (tag, payload) = match conn.decoder.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(e) => return self.conn_error(conn, e),
            };
            self.global.frame_decoded();
            // Same per-frame cadence as the threaded reader's hook.
            match faults::hook_conn_frame() {
                ConnFault::None => {}
                // Stalls the whole reactor thread: coarser blast radius
                // than the threaded per-connection stall, same semantics.
                ConnFault::Stall(d) => std::thread::sleep(d),
                ConnFault::Reset => {
                    let _ = conn.sock.shutdown(Shutdown::Both);
                    return self.socket_failed(
                        conn,
                        io::Error::new(
                            io::ErrorKind::ConnectionReset,
                            "injected fault: connection reset",
                        ),
                    );
                }
            }
            if conn.state == ConnState::AwaitFirst {
                if tag == TAG_HELLO {
                    let Some(h) = decode_hello(&payload) else {
                        return self.conn_error(
                            conn,
                            io::Error::new(io::ErrorKind::InvalidData, "malformed hello payload"),
                        );
                    };
                    let opts = SessionOptions {
                        start_offset: h.resume_offset,
                        progress: h.ack_every > 0,
                    };
                    conn.ack_every = h.ack_every as u64;
                    self.open_session(conn, opts);
                    conn.state = ConnState::Streaming;
                    let max_pat = self.service.current().max_pattern_len() as u32;
                    queue_frame(conn, TAG_HELLO_ACK, &encode_hello_ack(max_pat));
                    continue;
                }
                // Plain (PR-1 protocol) session: this is the first regular
                // frame; fall through and handle it below.
                self.open_session(conn, SessionOptions::default());
                conn.state = ConnState::Streaming;
            }
            match tag {
                TAG_CHUNK => {
                    let syms: Vec<u32> = payload.iter().map(|&b| b as u32).collect();
                    let Some(sess) = conn.session.as_ref() else {
                        return Err(());
                    };
                    match sess.try_push(syms) {
                        Ok(()) => {}
                        Err(TryPushError::WouldBlock(d)) => conn.pending_chunk = Some(d),
                        Err(TryPushError::Closed(_)) => {
                            return self.conn_error(
                                conn,
                                io::Error::new(io::ErrorKind::BrokenPipe, "service shut down"),
                            );
                        }
                    }
                }
                TAG_CLOSE => {
                    conn.read_done = true;
                    conn.state = ConnState::Draining;
                    if let Some(sess) = conn.session.as_mut() {
                        if !sess.try_finish() {
                            conn.pending_close = true;
                        }
                    }
                }
                TAG_DICT_ADD | TAG_DICT_REMOVE | TAG_DICT_COMMIT | TAG_DICT_INFO => {
                    let (rtag, rpayload) =
                        handle_dict_frame(self.admin.as_deref(), &self.global, tag, &payload);
                    queue_frame(conn, rtag, &rpayload);
                }
                TAG_STATS => {
                    queue_frame(conn, TAG_STATS_RESP, &encode_stats(&self.service.metrics()));
                }
                TAG_HELLO => {
                    return self.conn_error(
                        conn,
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            "hello is only valid as the first frame",
                        ),
                    );
                }
                other => {
                    return self.conn_error(
                        conn,
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unexpected client frame tag {other:#x}"),
                        ),
                    );
                }
            }
        }
        Ok(())
    }

    fn handle_eof(&mut self, conn: &mut Conn) -> Result<(), ()> {
        if !conn.read_done
            || conn.backpressured()
            || !matches!(conn.state, ConnState::AwaitFirst | ConnState::Streaming)
        {
            return Ok(());
        }
        if conn.decoder.mid_frame() {
            let e = conn.decoder.truncation_error();
            return self.conn_error(conn, e);
        }
        // EOF at a frame boundary is a clean close; a connection that
        // never sent a frame still opens (and summarizes) a session,
        // matching the threaded server.
        if conn.state == ConnState::AwaitFirst {
            self.open_session(conn, SessionOptions::default());
        }
        conn.state = ConnState::Draining;
        if let Some(sess) = conn.session.as_mut() {
            if !sess.try_finish() {
                conn.pending_close = true;
            }
        }
        Ok(())
    }

    /// Protocol/session-level failure with a usable socket: report via
    /// the terminal frame (after the summary path if a session exists).
    fn conn_error(&mut self, conn: &mut Conn, e: io::Error) -> Result<(), ()> {
        record_conn_error(&self.global, &e);
        let msg = conn_error_message(&e);
        conn.read_done = true;
        match conn.session.as_mut() {
            Some(sess) => {
                conn.pending_err = Some(msg);
                if !sess.try_finish() {
                    conn.pending_close = true;
                }
                conn.state = ConnState::Draining;
            }
            None => {
                // Pre-session: a direct error frame, then close.
                queue_frame(conn, TAG_ERROR, msg.as_bytes());
                conn.state = ConnState::Closing;
            }
        }
        Ok(())
    }

    /// Socket-level failure (reset, write error): no more I/O possible.
    /// The session, if any, still gets its close marker.
    fn socket_failed(&mut self, conn: &mut Conn, e: io::Error) -> Result<(), ()> {
        record_conn_error(&self.global, &e);
        conn.read_done = true;
        match conn.session.as_mut() {
            Some(sess) => {
                if sess.try_finish() {
                    Err(())
                } else {
                    conn.state = ConnState::Dead;
                    Ok(())
                }
            }
            None => Err(()),
        }
    }

    /// Alternate pumping events and flushing until no progress is
    /// possible: either the socket would block (EPOLLOUT takes over) or
    /// the event channel is dry.
    fn pump_and_flush(&mut self, conn: &mut Conn) -> Result<(), ()> {
        loop {
            let before = conn.out.len();
            self.pump_events(conn);
            let added = conn.out.len() > before;
            self.flush(conn)?;
            if conn.out_pos < conn.out.len() || !added {
                return Ok(());
            }
        }
    }

    fn pump_events(&mut self, conn: &mut Conn) {
        if conn.state == ConnState::Dead {
            // Can't write anything; drain and discard so the shard worker
            // is never wedged on this session's event channel.
            while let Some(ev) = conn.session.as_ref().and_then(|s| s.try_next_event()) {
                if matches!(ev, Event::Closed(_) | Event::Failed(_)) {
                    conn.session = None;
                    break;
                }
            }
            return;
        }
        if !matches!(conn.state, ConnState::Streaming | ConnState::Draining) {
            return;
        }
        loop {
            if conn.out.len() - conn.out_pos >= OUT_HIGH_WATER {
                break; // let the bounded event channel backpressure the worker
            }
            let Some(ev) = conn.session.as_ref().and_then(|s| s.try_next_event()) else {
                break;
            };
            match ev {
                Event::Matches(batch) => {
                    for m in &batch {
                        queue_frame(conn, TAG_MATCH, &encode_match(m));
                    }
                }
                Event::Progress(consumed) => {
                    conn.chunks_seen += 1;
                    if conn.ack_every > 0 && conn.chunks_seen.is_multiple_of(conn.ack_every) {
                        queue_frame(conn, TAG_ACK, &encode_ack(consumed));
                    }
                }
                Event::Epoch {
                    epoch,
                    max_pattern_len,
                } => {
                    queue_frame(
                        conn,
                        TAG_EPOCH,
                        &encode_epoch(&EpochChange {
                            epoch,
                            max_pattern_len,
                        }),
                    );
                }
                Event::Failed(msg) => {
                    queue_frame(conn, TAG_ERROR, msg.as_bytes());
                    conn.session = None;
                    conn.state = ConnState::Closing;
                    break;
                }
                Event::Closed(summary) => {
                    match conn.pending_err.take() {
                        Some(msg) => queue_frame(conn, TAG_ERROR, msg.as_bytes()),
                        None => queue_frame(conn, TAG_SUMMARY, &encode_summary(&summary)),
                    }
                    conn.session = None;
                    conn.state = ConnState::Closing;
                    break;
                }
            }
        }
    }

    fn flush(&mut self, conn: &mut Conn) -> Result<(), ()> {
        while conn.out_pos < conn.out.len() {
            match conn.sock.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    return self.write_failed(
                        conn,
                        io::Error::new(io::ErrorKind::WriteZero, "socket write returned 0"),
                    );
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.global.partial_write();
                    break; // EPOLLOUT interest takes over (update_interest)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return self.write_failed(conn, e),
            }
        }
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            if conn.state == ConnState::Closing {
                return Err(()); // terminal frame delivered — close
            }
        } else if conn.out_pos >= OUT_HIGH_WATER && conn.out_pos * 2 >= conn.out.len() {
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
        Ok(())
    }

    fn write_failed(&mut self, conn: &mut Conn, e: io::Error) -> Result<(), ()> {
        // Nothing queued can be delivered anymore.
        conn.out.clear();
        conn.out_pos = 0;
        self.socket_failed(conn, e)
    }

    /// Reconcile the selector registration with what the connection can
    /// currently make progress on.
    fn update_interest(&mut self, conn: &mut Conn) {
        let want_read = matches!(conn.state, ConnState::AwaitFirst | ConnState::Streaming)
            && !conn.read_done
            && !conn.backpressured();
        let want_write = conn.out_pos < conn.out.len() && conn.state != ConnState::Dead;
        let desired = match (want_read, want_write) {
            (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            (false, false) => None,
        };
        if desired == conn.registered {
            return;
        }
        match (conn.registered, desired) {
            (Some(_), None) => {
                let _ = self.poll.deregister(&conn.sock);
            }
            (None, Some(i)) => {
                let _ = self.poll.register(&conn.sock, Token(conn.token), i);
            }
            (Some(_), Some(i)) => {
                let _ = self.poll.reregister(&conn.sock, Token(conn.token), i);
            }
            (None, None) => {}
        }
        conn.registered = desired;
    }

    fn open_session(&self, conn: &mut Conn, opts: SessionOptions) {
        let ready = Arc::clone(&self.ready);
        let tok = conn.token;
        let flag = Arc::clone(&conn.ready_flag);
        let notify: SessionNotify = Arc::new(move || {
            // Coalesce: one ready-list entry per service pass. The
            // ReadyList mutex provides the happens-before; the flag only
            // suppresses duplicates.
            if !flag.swap(true, Ordering::Relaxed) {
                ready.push(tok);
            }
        });
        conn.session = Some(self.service.open_with_notify(opts, Some(notify)));
    }

    fn destroy(&mut self, mut conn: Conn) {
        if conn.registered.is_some() {
            let _ = self.poll.deregister(&conn.sock);
            conn.registered = None;
        }
        self.registry.lock().unwrap().remove(&conn.registry_id);
        let _ = conn.sock.shutdown(Shutdown::Both);
        self.live.fetch_sub(1, Ordering::SeqCst);
        // Dropping a still-open Session sends a best-effort close.
    }

    fn expire_timers(&mut self) {
        if self.cfg.read_timeout.is_none() || self.timers.is_empty() {
            return;
        }
        let timeout = self.cfg.read_timeout.unwrap();
        let now = Instant::now();
        let mut fired = std::mem::take(&mut self.timer_scratch);
        fired.clear();
        self.timers.tick(now, &mut fired);
        for &tok in &fired {
            self.global.timer_expired();
            let Some(conn) = self.conns.get(&tok) else {
                continue; // closed since arming — lazy cancellation
            };
            if conn.read_done || !matches!(conn.state, ConnState::AwaitFirst | ConnState::Streaming)
            {
                continue; // no longer subject to the idle timeout
            }
            let due = conn.last_activity + timeout;
            if now < due {
                self.timers.insert(due, tok); // activity since arming
                continue;
            }
            let Some(mut conn) = self.conns.remove(&tok) else {
                continue;
            };
            conn.ready_flag.store(false, Ordering::Relaxed);
            // Same classification as a blocking read timing out.
            let e = io::Error::new(io::ErrorKind::WouldBlock, "read timeout");
            let res = self
                .conn_error(&mut conn, e)
                .and_then(|()| self.pump_and_flush(&mut conn));
            match res {
                Ok(()) => {
                    self.update_interest(&mut conn);
                    if conn.has_pending() {
                        self.pending.push(tok);
                    }
                    self.conns.insert(tok, conn);
                }
                Err(()) => self.destroy(conn),
            }
        }
        self.timer_scratch = fired;
    }

    /// Hard-stop teardown: give every in-flight session its close marker
    /// (bounded retries), then drop whatever is left.
    fn teardown(&mut self) {
        self.close_listener();
        while let Ok(sock) = self.inbox.try_recv() {
            self.live.fetch_sub(1, Ordering::SeqCst);
            drop(sock);
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        while !self.conns.is_empty() && Instant::now() < deadline {
            let toks: Vec<usize> = self.conns.keys().copied().collect();
            let mut progressed = false;
            for tok in toks {
                let Some(mut conn) = self.conns.remove(&tok) else {
                    continue;
                };
                // Discard events so no shard worker stays wedged on us.
                while conn
                    .session
                    .as_ref()
                    .and_then(|s| s.try_next_event())
                    .is_some()
                {}
                let done = match conn.session.as_mut() {
                    Some(s) => s.try_finish(),
                    None => true,
                };
                if done {
                    self.destroy(conn);
                    progressed = true;
                } else {
                    self.conns.insert(tok, conn);
                }
            }
            if !progressed {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let rest: Vec<Conn> = self.conns.drain().map(|(_, c)| c).collect();
        for conn in rest {
            self.destroy(conn);
        }
    }
}
