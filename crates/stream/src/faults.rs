//! Deterministic fault injection for the stream service.
//!
//! Compiled to inline no-op stubs unless the `fault-injection` cargo
//! feature is on, so production builds pay **nothing** — the hooks vanish.
//! With the feature on but no plan [`install`]ed, every hook is a single
//! relaxed atomic load.
//!
//! Faults are counter-scheduled: `*_every = N` fires the fault on every
//! Nth time its hook runs (0 disables it), with an optional per-fault
//! budget `*_max` (0 = unlimited). Stall durations get jitter from a
//! seeded `StdRng` (the vendored `rand`), so one [`FaultConfig`] yields a
//! reproducible fault *schedule* per process — thread interleaving still
//! varies which session absorbs each fault, which is the point: the chaos
//! suite asserts outcome-equivalence, not a fixed trace.
//!
//! Injection points in the service:
//! * [`hook_worker_chunk`] — inside the per-chunk `catch_unwind`; a panic
//!   here fails **one** session (`Event::Failed`), the worker survives.
//! * [`hook_worker_loop`] — outside the per-chunk guard; a panic here
//!   crashes the whole shard worker, exercising the supervisor's
//!   respawn-and-fail-in-flight path.
//! * [`hook_epoch_swap`] — at the chunk-boundary epoch-adoption point; a
//!   panic here crashes the worker mid-dictionary-swap, exercising resume
//!   across an epoch change.
//! * [`hook_accept`] — synthesizes a transient `accept()` error (the
//!   EMFILE shape), exercising the accept loop's capped backoff.
//! * [`hook_conn_frame`] — before each frame read on a connection: can
//!   stall the read (slow-read injection) or hard-reset the socket.
//! * [`hook_reactor_wait`] — before each reactor `poll` wait: can force a
//!   spurious wakeup (waker fires with nothing to do) or simulate the
//!   wait returning `EINTR` (signal delivery), exercising the loop's
//!   zero-event paths.
//! * [`hook_accept_overflow`] — inside the accept burst: synthesizes the
//!   `ECONNABORTED` an overflowing accept queue produces (the peer gave
//!   up while queued); the drain must skip it and keep accepting.

use std::time::Duration;

/// What to do to a connection before reading its next frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    None,
    /// Sleep this long before the read (slow-read / stall injection).
    Stall(Duration),
    /// Hard-close the socket mid-session (reset injection).
    Reset,
}

/// What to do to a reactor before its next `poll` wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitFault {
    None,
    /// Fire the reactor's own waker first: the wait returns immediately
    /// with a wakeup that carries no work (spurious-wakeup injection).
    Spurious,
    /// Skip the wait as if `epoll_wait` returned `EINTR` (zero events).
    Eintr,
}

/// Fault plan: `*_every = 0` disables a fault; `*_max = 0` = unlimited.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Seed for stall-duration jitter.
    pub seed: u64,
    /// Panic inside chunk processing every Nth chunk (fails one session).
    pub worker_panic_every: u64,
    pub worker_panic_max: u64,
    /// Panic in the worker loop every Nth chunk job (crashes the worker;
    /// the supervisor respawns it and fails its in-flight sessions).
    pub worker_crash_every: u64,
    pub worker_crash_max: u64,
    /// Panic at the Nth epoch-swap adoption point (crashes the worker
    /// mid-swap; exercises resume across a dictionary epoch change).
    pub swap_crash_every: u64,
    pub swap_crash_max: u64,
    /// Synthesize an `accept()` error every Nth accept-loop pass.
    pub accept_error_every: u64,
    pub accept_error_max: u64,
    /// Reset a connection before its Nth frame read (counted globally).
    pub conn_reset_every: u64,
    pub conn_reset_max: u64,
    /// Stall before every Nth frame read, for `read_stall_ms` (+ jitter).
    pub read_stall_every: u64,
    pub read_stall_ms: u64,
    /// Stall the worker before every Nth chunk, for `queue_stall_ms`
    /// (+ jitter) — builds real queue backpressure.
    pub queue_stall_every: u64,
    pub queue_stall_ms: u64,
    /// Spurious-wake the reactor before every Nth `poll` wait.
    pub spurious_wake_every: u64,
    pub spurious_wake_max: u64,
    /// Make every Nth reactor `poll` wait behave as `EINTR` (zero events).
    pub wait_eintr_every: u64,
    pub wait_eintr_max: u64,
    /// Synthesize an `ECONNABORTED` on every Nth accepted connection
    /// (accept-queue overflow shape: the queued peer gave up).
    pub accept_overflow_every: u64,
    pub accept_overflow_max: u64,
}

/// How many faults of each kind actually fired since [`install`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    pub worker_panics: u64,
    pub worker_crashes: u64,
    pub swap_crashes: u64,
    pub accept_errors: u64,
    pub conn_resets: u64,
    pub read_stalls: u64,
    pub queue_stalls: u64,
    pub spurious_wakes: u64,
    pub wait_eintrs: u64,
    pub accept_overflows: u64,
}

#[cfg(feature = "fault-injection")]
mod imp {
    use super::{ConnFault, FaultConfig, FaultCounts, WaitFault};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    #[derive(Default)]
    struct Counter {
        seen: AtomicU64,
        fired: AtomicU64,
    }

    impl Counter {
        /// Count one hook pass; true iff the fault fires this time.
        fn fire(&self, every: u64, max: u64) -> bool {
            if every == 0 {
                return false;
            }
            let n = self.seen.fetch_add(1, Ordering::SeqCst) + 1;
            if !n.is_multiple_of(every) {
                return false;
            }
            loop {
                let f = self.fired.load(Ordering::SeqCst);
                if max > 0 && f >= max {
                    return false;
                }
                if self
                    .fired
                    .compare_exchange(f, f + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    return true;
                }
            }
        }
    }

    struct Inner {
        cfg: FaultConfig,
        rng: Mutex<StdRng>,
        panic: Counter,
        crash: Counter,
        swap: Counter,
        accept: Counter,
        reset: Counter,
        read_stall: Counter,
        queue_stall: Counter,
        spurious: Counter,
        eintr: Counter,
        overflow: Counter,
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static STATE: Mutex<Option<Arc<Inner>>> = Mutex::new(None);

    fn state() -> Option<Arc<Inner>> {
        if !ENABLED.load(Ordering::Relaxed) {
            return None;
        }
        STATE.lock().unwrap().clone()
    }

    /// Install a fault plan (replacing any previous one; counters reset).
    pub fn install(cfg: FaultConfig) {
        let inner = Inner {
            rng: Mutex::new(StdRng::seed_from_u64(cfg.seed)),
            cfg,
            panic: Counter::default(),
            crash: Counter::default(),
            swap: Counter::default(),
            accept: Counter::default(),
            reset: Counter::default(),
            read_stall: Counter::default(),
            queue_stall: Counter::default(),
            spurious: Counter::default(),
            eintr: Counter::default(),
            overflow: Counter::default(),
        };
        *STATE.lock().unwrap() = Some(Arc::new(inner));
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Remove the active fault plan; all hooks become no-ops again.
    pub fn clear() {
        ENABLED.store(false, Ordering::SeqCst);
        *STATE.lock().unwrap() = None;
    }

    /// Fired-fault counts for the active plan (zero when none installed).
    pub fn counts() -> FaultCounts {
        state().map_or(FaultCounts::default(), |s| FaultCounts {
            worker_panics: s.panic.fired.load(Ordering::SeqCst),
            worker_crashes: s.crash.fired.load(Ordering::SeqCst),
            swap_crashes: s.swap.fired.load(Ordering::SeqCst),
            accept_errors: s.accept.fired.load(Ordering::SeqCst),
            conn_resets: s.reset.fired.load(Ordering::SeqCst),
            read_stalls: s.read_stall.fired.load(Ordering::SeqCst),
            queue_stalls: s.queue_stall.fired.load(Ordering::SeqCst),
            spurious_wakes: s.spurious.fired.load(Ordering::SeqCst),
            wait_eintrs: s.eintr.fired.load(Ordering::SeqCst),
            accept_overflows: s.overflow.fired.load(Ordering::SeqCst),
        })
    }

    fn jittered(s: &Inner, ms: u64) -> Duration {
        let extra = s.rng.lock().unwrap().gen_range(0..=ms / 2 + 1);
        Duration::from_millis(ms + extra)
    }

    pub fn hook_worker_chunk() {
        if let Some(s) = state() {
            if s.queue_stall.fire(s.cfg.queue_stall_every, 0) {
                std::thread::sleep(jittered(&s, s.cfg.queue_stall_ms));
            }
            if s.panic
                .fire(s.cfg.worker_panic_every, s.cfg.worker_panic_max)
            {
                panic!("injected fault: worker chunk panic");
            }
        }
    }

    pub fn hook_worker_loop() {
        if let Some(s) = state() {
            if s.crash
                .fire(s.cfg.worker_crash_every, s.cfg.worker_crash_max)
            {
                panic!("injected fault: worker loop crash");
            }
        }
    }

    pub fn hook_epoch_swap() {
        if let Some(s) = state() {
            if s.swap.fire(s.cfg.swap_crash_every, s.cfg.swap_crash_max) {
                panic!("injected fault: worker crash mid-epoch-swap");
            }
        }
    }

    pub fn hook_accept() -> Option<std::io::Error> {
        let s = state()?;
        s.accept
            .fire(s.cfg.accept_error_every, s.cfg.accept_error_max)
            .then(|| std::io::Error::other("injected fault: accept failed (synthetic EMFILE)"))
    }

    pub fn hook_conn_frame() -> ConnFault {
        if let Some(s) = state() {
            if s.reset.fire(s.cfg.conn_reset_every, s.cfg.conn_reset_max) {
                return ConnFault::Reset;
            }
            if s.read_stall.fire(s.cfg.read_stall_every, 0) {
                return ConnFault::Stall(jittered(&s, s.cfg.read_stall_ms));
            }
        }
        ConnFault::None
    }

    pub fn hook_reactor_wait() -> WaitFault {
        if let Some(s) = state() {
            if s.eintr.fire(s.cfg.wait_eintr_every, s.cfg.wait_eintr_max) {
                return WaitFault::Eintr;
            }
            if s.spurious
                .fire(s.cfg.spurious_wake_every, s.cfg.spurious_wake_max)
            {
                return WaitFault::Spurious;
            }
        }
        WaitFault::None
    }

    pub fn hook_accept_overflow() -> Option<std::io::Error> {
        let s = state()?;
        s.overflow
            .fire(s.cfg.accept_overflow_every, s.cfg.accept_overflow_max)
            .then(|| {
                std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "injected fault: accept-queue overflow (synthetic ECONNABORTED)",
                )
            })
    }

    /// Silence the default panic hook for injected panics (the supervisor
    /// catches them; the stderr backtraces are pure noise in chaos runs).
    /// Idempotent; chains to the previous hook for genuine panics.
    pub fn quiet_injected_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|m| m.contains("injected fault"))
                    .or_else(|| {
                        info.payload()
                            .downcast_ref::<String>()
                            .map(|m| m.contains("injected fault"))
                    })
                    .unwrap_or(false);
                if !injected {
                    prev(info);
                }
            }));
        });
    }
}

#[cfg(not(feature = "fault-injection"))]
mod imp {
    use super::{ConnFault, FaultConfig, FaultCounts, WaitFault};

    #[inline(always)]
    pub fn install(_cfg: FaultConfig) {}

    #[inline(always)]
    pub fn clear() {}

    #[inline(always)]
    pub fn counts() -> FaultCounts {
        FaultCounts::default()
    }

    #[inline(always)]
    pub fn hook_worker_chunk() {}

    #[inline(always)]
    pub fn hook_worker_loop() {}

    #[inline(always)]
    pub fn hook_epoch_swap() {}

    #[inline(always)]
    pub fn hook_accept() -> Option<std::io::Error> {
        None
    }

    #[inline(always)]
    pub fn hook_conn_frame() -> ConnFault {
        ConnFault::None
    }

    #[inline(always)]
    pub fn hook_reactor_wait() -> WaitFault {
        WaitFault::None
    }

    #[inline(always)]
    pub fn hook_accept_overflow() -> Option<std::io::Error> {
        None
    }

    #[inline(always)]
    pub fn quiet_injected_panics() {}
}

pub use imp::*;

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn counter_schedule_and_budget() {
        install(FaultConfig {
            conn_reset_every: 3,
            conn_reset_max: 2,
            ..Default::default()
        });
        let fired: Vec<bool> = (0..12)
            .map(|_| hook_conn_frame() == ConnFault::Reset)
            .collect();
        // Fires on pass 3 and 6, then the budget of 2 is spent.
        let expect: Vec<bool> = (1..=12).map(|n| n % 3 == 0 && n <= 6).collect();
        assert_eq!(fired, expect);
        assert_eq!(counts().conn_resets, 2);
        clear();
        assert_eq!(hook_conn_frame(), ConnFault::None);
        assert_eq!(counts(), FaultCounts::default());
    }
}
