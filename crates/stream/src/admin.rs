//! Dictionary administration: the bridge between the wire protocol's
//! `DICT_*` frames and a [`DictStore`] + [`EpochHandle`] pair.
//!
//! One [`DictAdmin`] is shared by every connection of a versioned server.
//! Staging and committing serialize on the store mutex (updates are rare
//! and cheap compared to matching); **publishing** the committed snapshot
//! is a pointer swap on the epoch handle, so streaming sessions never
//! block on a rebuild — they adopt the new epoch at their next chunk
//! boundary.

use std::sync::{Arc, Mutex};

use pdm_core::dict::Sym;
use pdm_dict::{BootFallback, CommitOutcome, DictStore, EpochHandle, SnapshotPath, StoreError};
use pdm_pram::{CostModel, Ctx, ExecPolicy};

use crate::metrics::GlobalMetrics;
use crate::proto::DictInfo;

/// Shared admin state for a versioned server (see module docs).
pub struct DictAdmin {
    store: Mutex<DictStore>,
    handle: Arc<EpochHandle>,
    /// Context for commit-time rebuilds (the full-rebuild path runs the
    /// parallel build on this policy's pool).
    ctx: Ctx,
    /// Why the first epoch was rebuilt instead of cold-loaded from the
    /// `.snap` sidecar; `None` = it was cold-loaded.
    boot_fallback: Option<BootFallback>,
}

impl DictAdmin {
    /// Wrap a store, publishing its current committed dictionary as the
    /// initial epoch — cold-loaded from the `.snap` sidecar when it is
    /// fresh, rebuilt otherwise. `exec` is the execution policy for
    /// commit-time rebuilds.
    pub fn new(mut store: DictStore, exec: ExecPolicy) -> Result<Arc<Self>, StoreError> {
        let ctx = Ctx {
            exec,
            cost: Arc::new(CostModel::new()),
        };
        let boot = store.boot_snapshot(&ctx)?;
        let handle = EpochHandle::new(boot.snapshot);
        Ok(Arc::new(DictAdmin {
            store: Mutex::new(store),
            handle,
            ctx,
            boot_fallback: boot.fallback,
        }))
    }

    /// Was the initial epoch cold-loaded from the sidecar (no rebuild)?
    pub fn booted_cold(&self) -> bool {
        self.boot_fallback.is_none()
    }

    /// Why boot rebuilt instead of cold-loading (`None` = cold-loaded).
    pub fn boot_fallback(&self) -> Option<&BootFallback> {
        self.boot_fallback.as_ref()
    }

    /// The epoch slot to serve from (hand to
    /// [`crate::ShardedService::start_versioned`]).
    pub fn handle(&self) -> Arc<EpochHandle> {
        Arc::clone(&self.handle)
    }

    /// Stage a pattern add; returns the current (unchanged) epoch.
    pub fn add(&self, pattern: &[Sym]) -> Result<u64, StoreError> {
        let mut store = self.store.lock().expect("admin store poisoned");
        store.stage_add(pattern)?;
        Ok(store.epoch())
    }

    /// Stage a pattern remove; returns the current (unchanged) epoch.
    pub fn remove(&self, pattern: &[Sym]) -> Result<u64, StoreError> {
        let mut store = self.store.lock().expect("admin store poisoned");
        store.stage_remove(pattern)?;
        Ok(store.epoch())
    }

    /// Commit every staged op as a new epoch and publish it. Sessions pick
    /// the new snapshot up at their next chunk boundary; `global` records
    /// the swap and which rebuild path ran.
    pub fn commit(&self, global: &GlobalMetrics) -> Result<CommitOutcome, StoreError> {
        let mut store = self.store.lock().expect("admin store poisoned");
        let out = store.commit(&self.ctx)?;
        self.handle.publish(Arc::clone(&out.snapshot));
        global.epoch_swapped(out.path == SnapshotPath::Incremental);
        Ok(out)
    }

    /// Current dictionary state (committed epoch, live/staged counts, `m`).
    pub fn info(&self) -> DictInfo {
        let store = self.store.lock().expect("admin store poisoned");
        DictInfo {
            epoch: store.epoch(),
            patterns: store.pattern_count() as u32,
            staged: store.staged_len() as u32,
            max_pattern_len: self.handle.load().max_pattern_len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::dict::to_symbols;

    fn admin() -> Arc<DictAdmin> {
        DictAdmin::new(DictStore::in_memory(), ExecPolicy::Seq).unwrap()
    }

    #[test]
    fn commit_publishes_and_counts() {
        let a = admin();
        let g = GlobalMetrics::default();
        assert_eq!(a.handle().epoch(), 0);
        a.add(&to_symbols("he")).unwrap();
        a.add(&to_symbols("she")).unwrap();
        let out = a.commit(&g).unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(a.handle().epoch(), 1, "commit published the snapshot");
        let s = g.snapshot();
        assert_eq!(s.epoch_swaps, 1);
        assert_eq!(s.dict_applies_incremental + s.dict_rebuilds_full, 1);
        let info = a.info();
        assert_eq!((info.epoch, info.patterns, info.staged), (1, 2, 0));
        assert_eq!(info.max_pattern_len, 3);
    }

    #[test]
    fn in_memory_store_boots_by_rebuilding() {
        let a = admin();
        assert!(!a.booted_cold());
        assert_eq!(a.boot_fallback(), Some(&BootFallback::NoSidecar));
    }

    #[test]
    fn compacted_store_boots_cold() {
        let ctx = Ctx::seq();
        let dir = std::env::temp_dir().join(format!("pdm-admin-boot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("dict.pdml");
        {
            let mut store = DictStore::open(&log).unwrap();
            store.stage_add(&to_symbols("he")).unwrap();
            store.stage_add(&to_symbols("she")).unwrap();
            store.commit(&ctx).unwrap();
            store.compact(&ctx).unwrap();
        }
        let store = DictStore::open(&log).unwrap();
        let a = DictAdmin::new(store, ExecPolicy::Seq).unwrap();
        assert!(a.booted_cold(), "fallback: {:?}", a.boot_fallback());
        assert_eq!(a.handle().epoch(), 1);
        assert_eq!(a.handle().load().path(), SnapshotPath::ColdLoaded);
        let info = a.info();
        assert_eq!((info.epoch, info.patterns, info.staged), (1, 2, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_do_not_poison_the_store() {
        let a = admin();
        let g = GlobalMetrics::default();
        assert!(a.remove(&to_symbols("missing")).is_err());
        assert!(a.commit(&g).is_err(), "nothing staged");
        a.add(&to_symbols("ok")).unwrap();
        assert!(a.commit(&g).is_ok());
        assert_eq!(a.info().patterns, 1);
    }
}
