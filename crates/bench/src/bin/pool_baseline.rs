//! Persistent-pool throughput baseline, written to `BENCH_pool.json`.
//!
//! Records Seq vs pool MB/s at widths 1 / 2 / max for the three
//! round-heavy workloads (static §4 matching, equal-length Theorem 11,
//! chunked streaming), plus a round-dispatch microbenchmark comparing the
//! persistent pool against spawning scoped threads per round (what the
//! seed's executor did). The JSON carries `host_cpus` so readers can
//! judge the parallel numbers: on a single-CPU host the pool cannot beat
//! sequential on throughput, only on dispatch overhead.
//!
//! Usage: `pool_baseline [out.json]` (default `BENCH_pool.json`).

use pdm_bench::timing::time_median;
use pdm_core::equal_len::EqualLenMatcher;
use pdm_core::static1d::StaticMatcher;
use pdm_pram::Ctx;
use pdm_stream::StreamMatcher;
use pdm_textgen::{strings, Alphabet};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const TEXT_SYMS: usize = 1 << 20;
const CHUNK: usize = 64 << 10;
const RUNS: usize = 5;

fn widths() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut v = vec![1, 2];
    if !v.contains(&max) {
        v.push(max);
    }
    v
}

fn mbps(bytes: usize, d: std::time::Duration) -> f64 {
    bytes as f64 / (1 << 20) as f64 / d.as_secs_f64()
}

/// `{"1": 12.3, ...}` with widths as keys.
fn json_map(entries: &[(usize, f64)]) -> String {
    let mut s = String::from("{");
    for (i, (w, v)) in entries.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{w}\": {v:.2}");
    }
    s.push('}');
    s
}

/// Rounds/sec dispatching `rounds` tiny parallel rounds one way or the other.
fn rounds_per_sec(rounds: usize, run_round: impl Fn(&[u64])) -> f64 {
    let data = vec![1u64; 4096];
    let t0 = Instant::now();
    for _ in 0..rounds {
        run_round(&data);
    }
    rounds as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pool.json".into());
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut r = strings::rng(42);
    let mut text = strings::random_text(&mut r, Alphabet::Bytes, TEXT_SYMS);
    let pats = strings::excerpt_dictionary(&mut r, &text, 64, 32, 64);
    strings::plant_occurrences(&mut r, &mut text, &pats, 512);
    let eq_pats = strings::equal_len_dictionary(&mut r, Alphabet::Bytes, 16, 64);

    let bctx = Ctx::seq();
    let dict = Arc::new(StaticMatcher::build(&bctx, &pats).unwrap());
    let eq = EqualLenMatcher::new(&eq_pats).unwrap();

    let stream_all = |ctx: &Ctx| {
        let mut sm = StreamMatcher::new(Arc::clone(&dict));
        let mut out = Vec::new();
        for chunk in text.chunks(CHUNK) {
            out.extend(sm.push(ctx, chunk));
        }
        sm.finish();
        out
    };

    let workloads: Vec<(&str, Box<dyn Fn(&Ctx)>)> = vec![
        (
            "static1d",
            Box::new(|ctx: &Ctx| {
                std::hint::black_box(dict.match_text(ctx, &text));
            }),
        ),
        (
            "equal_len",
            Box::new(|ctx: &Ctx| {
                std::hint::black_box(eq.match_text(ctx, &text));
            }),
        ),
        (
            "streaming",
            Box::new(|ctx: &Ctx| {
                std::hint::black_box(stream_all(ctx));
            }),
        ),
    ];

    let mut sections = Vec::new();
    for (name, work) in &workloads {
        let seq = mbps(TEXT_SYMS, time_median(RUNS, || work(&Ctx::seq())));
        let par: Vec<(usize, f64)> = widths()
            .into_iter()
            .map(|w| {
                // Width 1 still routes through ExecPolicy (which maps it to
                // Seq) — it is the pool path's floor, not a second Seq run.
                let ctx = Ctx::with_threads(w);
                (w, mbps(TEXT_SYMS, time_median(RUNS, || work(&ctx))))
            })
            .collect();
        eprintln!("{name}: seq {seq:.2} MB/s, par {:?}", par);
        sections.push(format!(
            "    \"{name}\": {{\"seq_mbps\": {seq:.2}, \"par_mbps\": {}}}",
            json_map(&par)
        ));
    }

    // Round-dispatch overhead at width 2: persistent pool vs per-round
    // scoped spawning (the seed's strategy).
    let n_rounds = 2_000;
    let pool_ctx = Ctx::with_threads(2);
    let _ = pool_ctx.map(4096, |i| i); // spawn workers outside the clock
    let pool_rps = rounds_per_sec(n_rounds, |data| {
        pool_ctx.for_each(data.len(), |i| {
            std::hint::black_box(data[i]);
        });
    });
    let scoped_rps = rounds_per_sec(n_rounds, |data| {
        let mid = data.len() / 2;
        std::thread::scope(|s| {
            for half in [&data[..mid], &data[mid..]] {
                s.spawn(move || {
                    for v in half {
                        std::hint::black_box(v);
                    }
                });
            }
        });
    });

    let json = format!(
        "{{\n  \"meta\": {{\"host_cpus\": {host_cpus}, \"text_bytes\": {TEXT_SYMS}, \
         \"runs\": {RUNS}, \"note\": \"par >= seq requires host_cpus > 1; on a \
         1-CPU host the pool's win is round dispatch, not throughput\"}},\n  \
         \"workloads\": {{\n{}\n  }},\n  \"round_dispatch\": {{\"width\": 2, \
         \"items_per_round\": 4096, \"pool_rounds_per_sec\": {pool_rps:.0}, \
         \"scoped_spawn_rounds_per_sec\": {scoped_rps:.0}, \
         \"pool_vs_spawn\": {:.2}}}\n}}\n",
        sections.join(",\n"),
        pool_rps / scoped_rps,
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
