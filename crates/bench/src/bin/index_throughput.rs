//! Offline-indexing workload, written to `BENCH_index.json`.
//!
//! Three questions, one corpus (the genome-shaped generator from
//! `pdm_textgen::corpus` — small σ, long repeats, the shape suffix arrays
//! are built for):
//!
//! * **build** — suffix-array + LCP construction MB/s, sequential and at
//!   pool widths 1 / 2 / max (the prefix-doubling schedule of
//!   `pdm_index::sa` over the radix/scan substrate);
//! * **query** — batch throughput in kilo-patterns/s for a prefix-sharing
//!   batch, with interval merging on and off, same widths;
//! * **crossover** — against the streaming baseline (`pdm_baselines`
//!   chunked Aho–Corasick, which re-scans the whole corpus per batch): how
//!   many batches until the one-off index build has paid for itself —
//!   `build_ms / (ac_batch_ms − index_batch_ms)`.
//!
//! Usage: `index_throughput [out.json] [--check baseline.json]`
//!
//! `PDM_BENCH_SMOKE=1` keeps the corpus size (so the numbers stay
//! comparable with a committed full run) but takes a single sample.
//! `--check` compares build seq MB/s and merged-query seq kqps against a
//! committed baseline with the same 30 % margin as `text_throughput`.

use pdm_baselines::{chunked_ac, AhoCorasick};
use pdm_bench::timing::time_median;
use pdm_index::{BatchOptions, CorpusIndex, QueryMode};
use pdm_pram::Ctx;
use pdm_textgen::{corpus, strings};
use std::fmt::Write as _;

const RUNS_FULL: usize = 3;
const CORPUS_SYMS: usize = 1 << 22;
const BATCH: usize = 8192;
const AC_CHUNK: usize = 64 << 10;

fn smoke() -> bool {
    std::env::var_os("PDM_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

fn widths() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut v = vec![1, 2];
    if !v.contains(&max) {
        v.push(max);
    }
    v
}

fn mbps(bytes: usize, d: std::time::Duration) -> f64 {
    bytes as f64 / (1 << 20) as f64 / d.as_secs_f64()
}

fn kqps(patterns: usize, d: std::time::Duration) -> f64 {
    patterns as f64 / 1e3 / d.as_secs_f64()
}

/// `{"1": 12.3, ...}` with widths as keys.
fn json_map(entries: &[(usize, f64)]) -> String {
    let mut s = String::from("{");
    for (i, (w, v)) in entries.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{w}\": {v:.2}");
    }
    s.push('}');
    s
}

/// Pull `"<section>" … "<key>": <float>` out of a baseline JSON produced by
/// this binary (hand-rolled to match the hand-rolled writer).
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{section}\""))?;
    let rest = &json[at..];
    let rest = &rest[rest.find(&format!("\"{key}\": "))? + format!("\"{key}\": ").len()..];
    let end = rest
        .find(|c: char| c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut out_path = String::from("BENCH_index.json");
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--check" {
            check_path = args.next();
        } else {
            out_path = a;
        }
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let runs = if smoke() { 1 } else { RUNS_FULL };

    let mut r = strings::rng(42);
    let text = corpus::genome_default(&mut r, CORPUS_SYMS);
    let pats = corpus::distinct_query_patterns(&mut r, &text, BATCH, 8, 32, 8);
    let pattern_bytes: usize = pats.iter().map(Vec::len).sum();

    // -- build ------------------------------------------------------------
    let build_seq = time_median(runs, || {
        std::hint::black_box(CorpusIndex::build(&Ctx::seq(), text.clone()));
    });
    let build_par: Vec<(usize, f64)> = widths()
        .into_iter()
        .map(|w| {
            let ctx = Ctx::with_threads(w);
            let d = time_median(runs, || {
                std::hint::black_box(CorpusIndex::build(&ctx, text.clone()));
            });
            (w, mbps(CORPUS_SYMS, d))
        })
        .collect();
    let build_seq_mbps = mbps(CORPUS_SYMS, build_seq);
    eprintln!("build: seq {build_seq_mbps:.2} MB/s, par {build_par:?}");

    // -- query ------------------------------------------------------------
    let idx = CorpusIndex::build(&Ctx::par(), text.clone());
    let mut query_legs: Vec<(&str, f64, Vec<(usize, f64)>)> = Vec::new();
    for merge in [true, false] {
        let opts = BatchOptions {
            merge,
            mode: QueryMode::Count,
        };
        let seq = kqps(
            BATCH,
            time_median(runs, || {
                std::hint::black_box(idx.query_batch(&Ctx::seq(), &pats, &opts));
            }),
        );
        let par: Vec<(usize, f64)> = widths()
            .into_iter()
            .map(|w| {
                let ctx = Ctx::with_threads(w);
                let d = time_median(runs, || {
                    std::hint::black_box(idx.query_batch(&ctx, &pats, &opts));
                });
                (w, kqps(BATCH, d))
            })
            .collect();
        let leg = if merge { "merge" } else { "no_merge" };
        eprintln!("query/{leg}: seq {seq:.2} kqps, par {par:?}");
        query_legs.push((leg, seq, par));
    }

    // -- crossover vs streaming AC ----------------------------------------
    // One AC batch = re-scan the whole corpus; one index batch = the merged
    // parallel query. Build cost amortizes over the difference.
    let ac = AhoCorasick::new(&pats);
    let maxlen = pats.iter().map(Vec::len).max().unwrap_or(1);
    let ac_batch = time_median(runs, || {
        std::hint::black_box(chunked_ac::find_all_chunked(&ac, &text, maxlen, AC_CHUNK));
    });
    let opts = BatchOptions {
        merge: true,
        mode: QueryMode::Count,
    };
    let ctx_max = Ctx::par();
    let idx_batch = time_median(runs, || {
        std::hint::black_box(idx.query_batch(&ctx_max, &pats, &opts));
    });
    let build_max = time_median(runs, || {
        std::hint::black_box(CorpusIndex::build(&ctx_max, text.clone()));
    });
    let ac_ms = ac_batch.as_secs_f64() * 1e3;
    let idx_ms = idx_batch.as_secs_f64() * 1e3;
    let build_ms = build_max.as_secs_f64() * 1e3;
    let batches_to_amortize = if ac_ms > idx_ms {
        build_ms / (ac_ms - idx_ms)
    } else {
        f64::INFINITY
    };
    eprintln!(
        "crossover: AC batch {ac_ms:.1} ms, index batch {idx_ms:.1} ms, \
         build {build_ms:.1} ms → {batches_to_amortize:.1} batches to amortize"
    );

    let query_sections: Vec<String> = query_legs
        .iter()
        .map(|(leg, seq, par)| {
            format!(
                "\"{leg}\": {{\"seq_kqps\": {seq:.2}, \"par_kqps\": {}}}",
                json_map(par)
            )
        })
        .collect();
    let cross = if batches_to_amortize.is_finite() {
        format!("{batches_to_amortize:.1}")
    } else {
        "null".into()
    };
    let json = format!(
        "{{\n  \"meta\": {{\"host_cpus\": {host_cpus}, \"corpus_syms\": {CORPUS_SYMS}, \
         \"batch_patterns\": {BATCH}, \"pattern_bytes\": {pattern_bytes}, \"runs\": {runs}, \
         \"smoke\": {}, \"note\": \"genome corpus; crossover = batches of {BATCH} \
         prefix-sharing patterns until index build beats per-batch AC rescans\"}},\n  \
         \"build\": {{\"seq_mbps\": {build_seq_mbps:.2}, \"par_mbps\": {}}},\n  \
         \"query\": {{{}}},\n  \
         \"crossover\": {{\"ac_batch_ms\": {ac_ms:.2}, \"index_batch_ms\": {idx_ms:.2}, \
         \"build_ms\": {build_ms:.2}, \"batches_to_amortize\": {cross}}}\n}}\n",
        smoke(),
        json_map(&build_par),
        query_sections.join(", "),
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    if let Some(base_path) = check_path {
        let base = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
        let merged_seq = query_legs
            .iter()
            .find(|(l, _, _)| *l == "merge")
            .map(|(_, s, _)| *s)
            .expect("merge leg always measured");
        let mut failed = false;
        for (name, cur, want) in [
            (
                "build seq_mbps",
                build_seq_mbps,
                extract(&base, "build", "seq_mbps"),
            ),
            (
                "query/merge seq_kqps",
                merged_seq,
                extract(&base, "query", "seq_kqps"),
            ),
        ] {
            let Some(want) = want else {
                eprintln!("check: {name} missing from baseline, skipping");
                continue;
            };
            let floor = want * 0.70;
            if cur < floor {
                eprintln!("check FAIL: {name} {cur:.2} < 70% of baseline {want:.2}");
                failed = true;
            } else {
                eprintln!("check ok:   {name} {cur:.2} vs baseline {want:.2}");
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
