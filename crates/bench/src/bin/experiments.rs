//! Experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! One experiment per claimed bound of the paper (it has no measured tables
//! of its own — the claims *are* the evaluation; see DESIGN.md §5):
//!
//! ```text
//! cargo run -p pdm-bench --release --bin experiments            # all
//! cargo run -p pdm-bench --release --bin experiments -- e1 e5   # subset
//! ```

use pdm_baselines::{aho_corasick::AhoCorasick, baker_bird, chunked_ac, naive};
use pdm_bench::fit::{flatness, linear_fit};
use pdm_bench::table::{f2, int, ms, Table};
use pdm_bench::time_median;
use pdm_core::allmatches;
use pdm_core::dict2d::{Dict2DMatcher, Grid2};
use pdm_core::dynamic::DynamicMatcher;
use pdm_core::equal_len::EqualLenMatcher;
use pdm_core::multidim::{match_tensor, Tensor};
use pdm_core::smallalpha::SmallAlphaMatcher;
use pdm_core::static1d::StaticMatcher;
use pdm_pram::{ceil_log2, Ctx};
use pdm_textgen::{grid, strings, Alphabet};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        ("e1", e1 as fn()),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("a1", a1),
        ("a2", a2),
    ];
    let selected: Vec<&(&str, fn())> = if args.is_empty() {
        all.iter().collect()
    } else {
        all.iter()
            .filter(|(name, _)| args.iter().any(|a| a == name))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("unknown experiment; choose from e1..e11, a1, a2");
        std::process::exit(2);
    }
    println!("# pdm experiments — Muthukrishnan & Palem, SPAA'93 reproduction");
    println!(
        "# host: {} threads available; cost model counts PRAM rounds/ops\n",
        std::thread::available_parallelism().map_or(0, |x| x.get())
    );
    for (name, f) in selected {
        println!("{}", "=".repeat(72));
        let _ = name;
        f();
        println!();
    }
}

/// Workload: random text + excerpt dictionary with planted occurrences.
fn workload(
    seed: u64,
    alpha: Alphabet,
    n: usize,
    n_pat: usize,
    min_len: usize,
    max_len: usize,
) -> (Vec<u32>, Vec<Vec<u32>>) {
    let mut r = strings::rng(seed);
    let mut text = strings::random_text(&mut r, alpha, n);
    let pats = strings::excerpt_dictionary(&mut r, &text, n_pat, min_len, max_len);
    strings::plant_occurrences(&mut r, &mut text, &pats, (n / max_len.max(1)).min(200));
    (text, pats)
}

// ---------------------------------------------------------------------------
// E1 — Theorem 1: prefix matching in O(log m) time, O(M + n log m) work.
// ---------------------------------------------------------------------------
fn e1() {
    println!("## E1 — Theorem 1: static prefix-matching");
    println!("claim: text side O(log m) rounds, O(n log m) work; dict side O(M) work\n");
    let n = 1 << 17;
    let mut t = Table::new(&[
        "m",
        "log2 m",
        "M",
        "dict work/M",
        "match rounds",
        "match work",
        "work/n",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut rounds = Vec::new();
    for &m in &[8usize, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
        let (text, pats) = workload(m as u64, Alphabet::Bytes, n, 16, m / 2, m);
        let m_total: usize = pats.iter().map(Vec::len).sum();
        let bctx = Ctx::seq();
        let matcher = StaticMatcher::build(&bctx, &pats).unwrap();
        let dwork = bctx.cost.snapshot().work as f64 / m_total as f64;
        let ctx = Ctx::seq();
        let _pm = matcher.prefix_match(&ctx, &text);
        let s = ctx.cost.snapshot();
        let lg = ceil_log2(m) as f64;
        xs.push(lg);
        ys.push(s.work as f64 / n as f64);
        rounds.push(s.rounds as f64);
        t.row(&[
            int(m as u64),
            f2(lg),
            int(m_total as u64),
            f2(dwork),
            int(s.rounds),
            int(s.work),
            f2(s.work as f64 / n as f64),
        ]);
    }
    t.print();
    let fw = linear_fit(&xs, &ys);
    let fr = linear_fit(&xs, &rounds);
    println!(
        "\nshape: work/n = {:.2} + {:.2}·log2(m)  (r² = {:.4})  — linear in log m ✓",
        fw.intercept, fw.slope, fw.r2
    );
    println!(
        "shape: rounds = {:.2} + {:.2}·log2(m)  (r² = {:.4})  — O(log m) time ✓",
        fr.intercept, fr.slope, fr.r2
    );
}

// ---------------------------------------------------------------------------
// E2 — Theorem 2: longest-pattern attribution in O(log m) time, O(M) work.
// ---------------------------------------------------------------------------
fn e2() {
    println!("## E2 — Theorem 2: longest pattern per dictionary prefix");
    println!("claim: O(log m) time, O(M) operations, any dictionary shape\n");
    let mut t = Table::new(&["shape", "κ", "M", "phase rounds", "phase work", "work/M"]);
    let mut per_m = Vec::new();
    for (shape, n_pat, len) in [
        ("random", 64usize, 64usize),
        ("random", 256, 64),
        ("random", 1024, 64),
        ("shared-prefix", 256, 64),
        ("nested", 512, 1),
    ] {
        let mut r = strings::rng(7);
        let pats = match shape {
            "shared-prefix" => {
                strings::shared_prefix_dictionary(&mut r, Alphabet::Bytes, n_pat, 48, 16)
            }
            "nested" => strings::nested_dictionary(&mut r, Alphabet::Bytes, n_pat),
            _ => strings::random_dictionary(&mut r, Alphabet::Bytes, n_pat, len / 2, len),
        };
        let m_total: usize = pats.iter().map(Vec::len).sum();
        let ctx = Ctx::seq();
        let _m = StaticMatcher::build(&ctx, &pats).unwrap();
        let phase = ctx
            .cost
            .phases()
            .into_iter()
            .find(|p| p.name == "dict/longest-pattern")
            .expect("phase recorded");
        per_m.push(phase.work as f64 / m_total as f64);
        t.row(&[
            shape.into(),
            int(n_pat as u64),
            int(m_total as u64),
            int(phase.rounds),
            int(phase.work),
            f2(phase.work as f64 / m_total as f64),
        ]);
    }
    t.print();
    println!(
        "\nshape: work/M flatness (max/min) = {:.2} — O(M) work ✓",
        flatness(&per_m)
    );
}

// ---------------------------------------------------------------------------
// E3 — Theorem 3: the preprocess/match split + wall-clock vs baselines.
// ---------------------------------------------------------------------------
fn e3() {
    println!("## E3 — Theorem 3: static dictionary matching end-to-end");
    println!("claim: dict O(M) work independent of n; text O(n log m) work;");
    println!("wall-clock: scales with threads, judged against AC and chunked-AC\n");

    // (a) cost-model: text work linear in n at fixed m.
    let m = 64usize;
    let mut t = Table::new(&["n", "match work", "work/n", "rounds"]);
    let mut per_n = Vec::new();
    for &n in &[1usize << 14, 1 << 16, 1 << 18] {
        let (text, pats) = workload(3, Alphabet::Bytes, n, 32, m / 2, m);
        let bctx = Ctx::seq();
        let matcher = StaticMatcher::build(&bctx, &pats).unwrap();
        let ctx = Ctx::seq();
        let _ = matcher.match_text(&ctx, &text);
        let s = ctx.cost.snapshot();
        per_n.push(s.work as f64 / n as f64);
        t.row(&[
            int(n as u64),
            int(s.work),
            f2(s.work as f64 / n as f64),
            int(s.rounds),
        ]);
    }
    t.print();
    println!(
        "\nshape: work/n flatness = {:.2} (rounds stay ~constant) ✓\n",
        flatness(&per_n)
    );

    // (b) wall-clock thread sweep.
    let n = 1 << 20;
    let (text, pats) = workload(4, Alphabet::Bytes, n, 64, 32, 64);
    let bctx = Ctx::par();
    let matcher = StaticMatcher::build(&bctx, &pats).unwrap();
    let ac = AhoCorasick::new(&pats);
    let ac_t = time_median(3, || ac.longest_match_per_position(&text));
    let mut t = Table::new(&["matcher", "threads", "time ms", "speedup vs AC-1t"]);
    t.row(&["aho-corasick".into(), "1".into(), ms(ac_t), f2(1.0)]);
    let max_threads = std::thread::available_parallelism().map_or(8, |x| x.get());
    for &th in &[1usize, 2, 4, 8] {
        if th > max_threads {
            break;
        }
        let ctx = Ctx::with_threads(th);
        let d = time_median(3, || matcher.match_text(&ctx, &text));
        t.row(&[
            "shrink-and-spawn".into(),
            int(th as u64),
            ms(d),
            f2(ac_t.as_secs_f64() / d.as_secs_f64()),
        ]);
        let pool = std::sync::Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(th)
                .build()
                .unwrap(),
        );
        let dchunk = time_median(3, || {
            pool.install(|| chunked_ac::longest_match_per_position_chunked(&ac, &text, 64, 1 << 16))
        });
        t.row(&[
            "chunked-AC".into(),
            int(th as u64),
            ms(dchunk),
            f2(ac_t.as_secs_f64() / dchunk.as_secs_f64()),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------------
// E4 — Theorem 4 / Corollary 1: the small-alphabet trade-off.
// ---------------------------------------------------------------------------
fn e4() {
    println!("## E4 — Theorem 4 / Corollary 1: small-alphabet matching");
    println!("claim: text work O(n·log m/L + n); dict work O(M·L·|Σ|);");
    println!("optimum near L* = √(log m/|Σ|)\n");
    let n = 1 << 16;
    let mut t = Table::new(&["|Σ|", "m", "L", "text work/n", "dict work", "L* (Cor 1)"]);
    for &(sigma, alpha) in &[(2u32, Alphabet::Binary), (4, Alphabet::Dna)] {
        for &m in &[256usize, 4096] {
            let mut r = strings::rng(11);
            let text = strings::random_text(&mut r, alpha, n);
            let pats = strings::random_dictionary(&mut r, alpha, 6, m / 2, m);
            let lstar = SmallAlphaMatcher::default_l(m, sigma);
            for l in [1usize, 2, 3, 4, 6] {
                let bctx = Ctx::seq();
                let sm = SmallAlphaMatcher::build_with_l(&bctx, &pats, sigma, l).unwrap();
                let dwork = bctx.cost.snapshot().work;
                let ctx = Ctx::seq();
                let _ = sm.match_text(&ctx, &text);
                let s = ctx.cost.snapshot();
                t.row(&[
                    int(sigma as u64),
                    int(m as u64),
                    int(l as u64),
                    f2(s.work as f64 / n as f64),
                    int(dwork),
                    int(lstar as u64),
                ]);
            }
        }
    }
    t.print();
    println!("\nshape: text work/n falls ~1/L while dict work grows ~L ✓");
}

// ---------------------------------------------------------------------------
// E5 — Theorem 11: equal-length matching with optimal (linear) work.
// ---------------------------------------------------------------------------
fn e5() {
    println!("## E5 — Theorem 11: equal-length multi-pattern matching (headline)");
    println!("claim: O(log m) time, O(n + M) TOTAL work — optimal speedup;");
    println!("contrast: the §4 matcher pays O(n log m) on the same workload\n");
    let n = 1 << 17;
    let kappa = 8;
    let mut t = Table::new(&[
        "m",
        "work/(n+M) [Thm11]",
        "rounds",
        "work/n [§4 matcher]",
        "AC time ms",
        "Thm11 time ms (par)",
    ]);
    let mut flat = Vec::new();
    for &m in &[8usize, 32, 128, 512, 2048] {
        let mut r = strings::rng(m as u64);
        let mut text = strings::random_text(&mut r, Alphabet::Bytes, n);
        let pats = strings::excerpt_dictionary(&mut r, &text, kappa, m, m);
        strings::plant_occurrences(&mut r, &mut text, &pats, 100);
        let m_total = kappa * m;
        let matcher = EqualLenMatcher::new(&pats).unwrap();
        let ctx = Ctx::seq();
        let _ = matcher.match_text(&ctx, &text);
        let s = ctx.cost.snapshot();
        let per_unit = s.work as f64 / (n + m_total) as f64;
        flat.push(per_unit);
        // §4 matcher on the same workload.
        let bctx = Ctx::seq();
        let sm = StaticMatcher::build(&bctx, &pats).unwrap();
        let ctx4 = Ctx::seq();
        let _ = sm.match_text(&ctx4, &text);
        let w4 = ctx4.cost.snapshot().work as f64 / n as f64;
        // Wall clock.
        let ac = AhoCorasick::new(&pats);
        let ac_t = time_median(3, || ac.longest_match_per_position(&text));
        let pctx = Ctx::par();
        let our_t = time_median(3, || matcher.match_text(&pctx, &text));
        t.row(&[
            int(m as u64),
            f2(per_unit),
            int(s.rounds),
            f2(w4),
            ms(ac_t),
            ms(our_t),
        ]);
    }
    t.print();
    println!(
        "\nshape: work/(n+M) flatness across m = {:.2} — OPTIMAL (linear) work ✓",
        flatness(&flat)
    );
}

// ---------------------------------------------------------------------------
// E6 — Theorem 6: 2-D dictionary matching.
// ---------------------------------------------------------------------------
fn e6() {
    println!("## E6 — Theorem 6: 2-D square-dictionary matching");
    println!("claim: text O(log m) time, O(n log m) work; dict O(M) work in the");
    println!("paper — O(M log m) in this implementation (documented deviation)\n");
    let side = 256usize;
    let n = side * side;
    let mut t = Table::new(&[
        "m",
        "text rounds",
        "text work/n",
        "dict work/M",
        "2D time ms",
        "Baker-Bird ms",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &m in &[4usize, 8, 16, 32, 64] {
        let mut r = strings::rng(m as u64);
        let mut tg = grid::random_grid(&mut r, Alphabet::Letters, side, side);
        let pats = grid::excerpt_square_dictionary(&mut r, &tg, 8, m / 2, m);
        grid::plant_squares(&mut r, &mut tg, &pats, 20);
        let g_pats: Vec<Grid2> = pats
            .iter()
            .map(|g| Grid2::new(g.rows, g.cols, g.data.clone()))
            .collect();
        let text = Grid2::new(tg.rows, tg.cols, tg.data.clone());
        let m_total: usize = g_pats.iter().map(|p| p.data.len()).sum();
        let bctx = Ctx::seq();
        let matcher = Dict2DMatcher::build(&bctx, &g_pats).unwrap();
        let dwork = bctx.cost.snapshot().work as f64 / m_total as f64;
        let ctx = Ctx::seq();
        let _ = matcher.match_grid(&ctx, &text);
        let s = ctx.cost.snapshot();
        xs.push(ceil_log2(m) as f64);
        ys.push(s.work as f64 / n as f64);
        // Wall clock: ours (parallel) vs Baker-Bird per size group.
        let pctx = Ctx::par();
        let ours = time_median(3, || matcher.match_grid(&pctx, &text));
        let n_pats: Vec<naive::Grid> = pats
            .iter()
            .map(|g| naive::Grid::new(g.rows, g.cols, g.data.clone()))
            .collect();
        let n_text = naive::Grid::new(tg.rows, tg.cols, tg.data.clone());
        let bb = time_median(3, || {
            baker_bird::largest_square_pattern_per_cell(&n_pats, &n_text)
        });
        t.row(&[
            int(m as u64),
            int(s.rounds),
            f2(s.work as f64 / n as f64),
            f2(dwork),
            ms(ours),
            ms(bb),
        ]);
    }
    t.print();
    let f = linear_fit(&xs, &ys);
    println!(
        "\nshape: text work/n = {:.2} + {:.2}·log2(m) (r²={:.3}) — O(n log m) ✓",
        f.intercept, f.slope, f.r2
    );
}

// ---------------------------------------------------------------------------
// E7 — Theorems 7/8: partly dynamic (insert + match).
// ---------------------------------------------------------------------------
fn e7() {
    println!("## E7 — Theorems 7/8: partly dynamic dictionary (insert + match)");
    println!("claim: insert O(λ) table work; match cost set by current m, not by");
    println!("how the dictionary was built\n");
    let ctx = Ctx::seq();
    let mut r = strings::rng(5);
    let mut d = DynamicMatcher::new();
    // Base dictionary.
    for p in strings::random_dictionary(&mut r, Alphabet::Bytes, 256, 16, 32) {
        d.insert(&ctx, &p).unwrap();
    }
    let mut t = Table::new(&["λ", "insert work", "work/λ", "insert rounds"]);
    let mut per_lambda = Vec::new();
    for &lam in &[16usize, 64, 256, 1024, 4096] {
        let p = strings::random_text(&mut r, Alphabet::Bytes, lam);
        let before = ctx.cost.snapshot();
        d.insert(&ctx, &p).unwrap();
        let s = ctx.cost.snapshot().since(before);
        per_lambda.push(s.work as f64 / lam as f64);
        t.row(&[
            int(lam as u64),
            int(s.work),
            f2(s.work as f64 / lam as f64),
            int(s.rounds),
        ]);
    }
    t.print();
    println!(
        "\nshape: insert work/λ flatness = {:.2} — O(λ) per insert ✓",
        flatness(&per_lambda)
    );
    // Match cost before/after a burst of inserts.
    let text = strings::random_text(&mut r, Alphabet::Bytes, 1 << 16);
    let c1 = Ctx::seq();
    let _ = d.match_text(&c1, &text);
    let w1 = c1.cost.snapshot().work;
    for p in strings::random_dictionary(&mut r, Alphabet::Bytes, 512, 16, 32) {
        let _ = d.insert(&ctx, &p);
    }
    let c2 = Ctx::seq();
    let _ = d.match_text(&c2, &text);
    let w2 = c2.cost.snapshot().work;
    println!(
        "match work before/after 512 more inserts: {w1} / {w2} (ratio {:.2}) — set by m, not history ✓",
        w2 as f64 / w1 as f64
    );
}

// ---------------------------------------------------------------------------
// E8 — Theorems 9/10: fully dynamic (deletes, amortized rebuilds).
// ---------------------------------------------------------------------------
fn e8() {
    println!("## E8 — Theorems 9/10: fully dynamic dictionary");
    println!("claim: delete amortized O(λ) table work via stamp-counting; the");
    println!("squeeze-out rebuild keeps cumulative cost linear in symbols touched\n");
    let ctx = Ctx::seq();
    let mut r = strings::rng(6);
    let mut d = DynamicMatcher::new();
    let pats = strings::random_dictionary(&mut r, Alphabet::Bytes, 400, 16, 64);
    let mut inserted_syms = 0usize;
    for p in &pats {
        d.insert(&ctx, p).unwrap();
        inserted_syms += p.len();
    }
    let after_inserts = ctx.cost.snapshot();
    let mut t = Table::new(&[
        "deletes",
        "cum work",
        "work/symbols-touched",
        "rebuilds",
        "live table entries",
    ]);
    let mut touched = inserted_syms;
    for (k, p) in pats.iter().enumerate().take(360) {
        d.delete(&ctx, p).unwrap();
        touched += p.len();
        if (k + 1) % 60 == 0 {
            let s = ctx.cost.snapshot();
            t.row(&[
                int((k + 1) as u64),
                int(s.work),
                f2(s.work as f64 / touched as f64),
                int(d.rebuilds() as u64),
                int(d.table_entry_count() as u64),
            ]);
        }
    }
    t.print();
    let total = ctx.cost.snapshot();
    println!(
        "\ninsert phase work {}, full trace work {} over {} symbols touched — amortized O(λ) ✓",
        after_inserts.work, total.work, touched
    );
    println!(
        "rebuilds fired: {} (squeeze-out amortization observable)",
        d.rebuilds()
    );
}

// ---------------------------------------------------------------------------
// E9 — §7 application: multi-dimensional single-pattern matching.
// ---------------------------------------------------------------------------
fn e9() {
    println!("## E9 — §7: 2-D single-pattern matching with optimal work");
    println!("claim: O(n + M) work for d-dim matching via dimension reduction\n");
    let side = 256usize;
    let n = side * side;
    let mut t = Table::new(&["m", "work/(n+M)", "ours ms (par)", "Baker-Bird ms"]);
    let mut flat = Vec::new();
    for &m in &[8usize, 16, 32, 64, 128] {
        let mut r = strings::rng(m as u64);
        let tg = grid::random_grid(&mut r, Alphabet::Dna, side, side);
        // Excerpt the pattern so occurrences exist.
        let pg = grid::excerpt_square_dictionary(&mut r, &tg, 1, m, m)
            .pop()
            .unwrap();
        let text = Tensor::new(vec![side, side], tg.data.clone());
        let pat = Tensor::new(vec![m, m], pg.data.clone());
        let ctx = Ctx::seq();
        let _ = match_tensor(&ctx, &text, &pat);
        let s = ctx.cost.snapshot();
        let per_unit = s.work as f64 / (n + m * m) as f64;
        flat.push(per_unit);
        let pctx = Ctx::par();
        let ours = time_median(3, || match_tensor(&pctx, &text, &pat));
        let ntext = naive::Grid::new(side, side, tg.data.clone());
        let npat = naive::Grid::new(m, m, pg.data.clone());
        let bb = time_median(3, || baker_bird::find_pattern_2d(&ntext, &npat));
        t.row(&[int(m as u64), f2(per_unit), ms(ours), ms(bb)]);
    }
    t.print();
    println!(
        "\nshape: work/(n+M) flatness across m = {:.2} — optimal work ✓",
        flatness(&flat)
    );
}

// ---------------------------------------------------------------------------
// E10 — §2 remark: all-matches output in output-linear work.
// ---------------------------------------------------------------------------
fn e10() {
    println!("## E10 — §2 remark: all-patterns-per-position output");
    println!("claim: given the longest-match output, the full (output-bound)");
    println!("listing costs work linear in n + output size (the [H93] role)\n");
    let n = 1 << 15;
    let mut t = Table::new(&["nest depth", "occurrences z", "expand work", "work/(n+z)"]);
    let mut per_unit = Vec::new();
    for &depth in &[4usize, 8, 16, 32] {
        let mut r = strings::rng(depth as u64);
        let pats = strings::nested_dictionary(&mut r, Alphabet::Binary, depth);
        let mut text = strings::random_text(&mut r, Alphabet::Binary, n);
        strings::plant_occurrences(&mut r, &mut text, &pats, 300);
        let bctx = Ctx::seq();
        let m = StaticMatcher::build(&bctx, &pats).unwrap();
        let mctx = Ctx::seq();
        let out = m.match_text(&mctx, &text);
        let ctx = Ctx::seq();
        let all = allmatches::enumerate_all(&ctx, &m, &out);
        let s = ctx.cost.snapshot();
        let z = all.total();
        per_unit.push(s.work as f64 / (n + z) as f64);
        t.row(&[
            int(depth as u64),
            int(z as u64),
            int(s.work),
            f2(s.work as f64 / (n + z) as f64),
        ]);
    }
    t.print();
    println!(
        "\nshape: expand work/(n+z) flatness = {:.2} — output-linear ✓",
        flatness(&per_unit)
    );
}

// ---------------------------------------------------------------------------
// E11 — Theorem 5: binary-encoded small-alphabet matching.
// ---------------------------------------------------------------------------
fn e11() {
    use pdm_core::smallalpha::BinaryEncodedMatcher;
    println!("## E11 — Theorem 5: binary-encoded matching for larger alphabets");
    println!("claim: encoding symbols as ⌈log2 Σ⌉ bits keeps the alphabet-dependent");
    println!("dictionary factor at 2 while text work pays an extra log Σ of steps\n");
    let n = 1 << 15;
    let mut t = Table::new(&[
        "|Σ|",
        "bits",
        "L (bit units)",
        "text work/n",
        "vs base work/n",
        "agree",
    ]);
    for &(sigma, alpha) in &[
        (16u32, Alphabet::Wide(16)),
        (64, Alphabet::Wide(64)),
        (256, Alphabet::Bytes),
    ] {
        let mut r = strings::rng(sigma as u64);
        let mut text = strings::random_text(&mut r, alpha, n);
        let pats = strings::excerpt_dictionary(&mut r, &text, 8, 8, 64);
        strings::plant_occurrences(&mut r, &mut text, &pats, 40);
        let bctx = Ctx::seq();
        let be = BinaryEncodedMatcher::build(&bctx, &pats, sigma).unwrap();
        let ctx = Ctx::seq();
        let out = be.match_text(&ctx, &text);
        let w = ctx.cost.snapshot().work as f64 / n as f64;
        // Base §4 matcher for the cross-check and work comparison.
        let b2 = Ctx::seq();
        let base = StaticMatcher::build(&b2, &pats).unwrap();
        let c2 = Ctx::seq();
        let base_out = base.match_text(&c2, &text);
        let wb = c2.cost.snapshot().work as f64 / n as f64;
        let agree = out
            .longest_pattern
            .iter()
            .zip(base_out.longest_pattern.iter())
            .all(|(a, b)| a == b);
        t.row(&[
            int(sigma as u64),
            int(be.bits_per_symbol() as u64),
            int(be.l_param() as u64),
            f2(w),
            f2(wb),
            if agree { "✓" } else { "✗" }.into(),
        ]);
        assert!(agree, "outputs must agree");
    }
    t.print();
    println!("\nshape: outputs identical to the §4 matcher at every |Σ| ✓");
}

// ---------------------------------------------------------------------------
// A1 — ablation: heavy-path marked-ancestor vs naive parent walk.
// Justifies the DESIGN.md §2 substitution for the [AFM92]/[PVW83] Euler-tour
// structure: queries must stay cheap on deep tries where walking parents
// costs Θ(depth).
// ---------------------------------------------------------------------------
fn a1() {
    use pdm_core::dynamic::ancestor::MarkedAncestorTree;
    println!("## A1 — ablation: nearest-marked-ancestor structure");
    println!("heavy paths + ordered mark sets (ours) vs naive parent walking\n");
    let mut t = Table::new(&[
        "depth",
        "marks",
        "heavy-path ms",
        "naive walk ms",
        "speedup",
    ]);
    for &depth in &[1_000usize, 10_000, 100_000] {
        // One long chain (the trie shape of one long pattern) with sparse marks.
        let mut tree = MarkedAncestorTree::new();
        let mut chain = vec![0u32];
        for _ in 0..depth {
            let v = tree.add_child(*chain.last().unwrap());
            chain.push(v);
        }
        let marks = (depth / 500).max(2);
        for i in 0..marks {
            tree.mark(chain[(i + 1) * depth / (marks + 1)]);
        }
        let queries: Vec<u32> = (0..10_000).map(|i| chain[(i * 37) % chain.len()]).collect();
        let fast = time_median(3, || {
            queries
                .iter()
                .map(|&v| tree.nearest_marked(v))
                .filter(Option::is_some)
                .count()
        });
        let naive_walk = time_median(3, || {
            queries
                .iter()
                .map(|&v| {
                    let mut v = v;
                    loop {
                        if tree.is_marked(v) {
                            break Some(v);
                        }
                        match tree.parent(v) {
                            Some(p) => v = p,
                            None => break None,
                        }
                    }
                })
                .filter(Option::is_some)
                .count()
        });
        t.row(&[
            int(depth as u64),
            int(marks as u64),
            ms(fast),
            ms(naive_walk),
            f2(naive_walk.as_secs_f64() / fast.as_secs_f64()),
        ]);
    }
    t.print();
    println!("\nshape: naive cost grows with depth; heavy-path stays ~flat ✓");
}

// ---------------------------------------------------------------------------
// A2 — ablation: CAS name table vs a mutex-guarded hash map.
// Justifies the lock-free ConcPairTable used for every namestamping round.
// ---------------------------------------------------------------------------
fn a2() {
    use parking_lot::Mutex;
    use pdm_naming::{NamePool, NameTable};
    use pdm_primitives::FxHashMap;
    println!("## A2 — ablation: namestamping table implementation");
    println!("CAS open-addressing (ours) vs Mutex<FxHashMap> under contention\n");
    let n_keys = 1usize << 18;
    let keys: Vec<(u32, u32)> = (0..n_keys as u32).map(|i| (i % 4096, i / 3)).collect();
    let threads = std::thread::available_parallelism().map_or(1, |x| x.get());
    let mut t = Table::new(&["impl", "threads", "ops", "time ms", "Mops/s"]);
    for &impl_cas in &[true, false] {
        let d = time_median(3, || {
            if impl_cas {
                let pool = NamePool::dictionary();
                let table = NameTable::with_capacity(n_keys, pool);
                std::thread::scope(|s| {
                    for th in 0..threads {
                        let table = &table;
                        let keys = &keys;
                        s.spawn(move || {
                            let mut acc = 0u64;
                            for &(a, b) in keys.iter().skip(th).step_by(threads.max(1)) {
                                acc = acc.wrapping_add(table.name(a, b) as u64);
                            }
                            acc
                        });
                    }
                });
            } else {
                let table: Mutex<FxHashMap<(u32, u32), u32>> = Mutex::new(FxHashMap::default());
                let next = std::sync::atomic::AtomicU32::new(1);
                std::thread::scope(|s| {
                    for th in 0..threads {
                        let table = &table;
                        let next = &next;
                        let keys = &keys;
                        s.spawn(move || {
                            let mut acc = 0u64;
                            for &(a, b) in keys.iter().skip(th).step_by(threads.max(1)) {
                                let mut m = table.lock();
                                let v = *m.entry((a, b)).or_insert_with(|| {
                                    next.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                                });
                                acc = acc.wrapping_add(v as u64);
                            }
                            acc
                        });
                    }
                });
            }
        });
        t.row(&[
            if impl_cas { "cas-table" } else { "mutex-map" }.into(),
            int(threads as u64),
            int(n_keys as u64),
            ms(d),
            f2(n_keys as f64 / d.as_secs_f64() / 1e6),
        ]);
    }
    t.print();
    println!("\nshape: CAS table sustains higher throughput (gap widens with cores) ✓");
}
