//! Cold-start cost of a built-matcher snapshot, written to
//! `BENCH_snap.json`.
//!
//! The question the v2 sidecar exists to answer: at what dictionary size
//! does loading the serialized frozen tables beat re-running the parallel
//! KMR build? Per pattern count this measures
//!
//! * **build** — `Snapshot::build_static` from the raw pattern list (the
//!   fallback path every boot pays without a sidecar);
//! * **encode** — `to_sidecar_bytes`, the one-time compaction cost;
//! * **load** — `Snapshot::from_bytes` on the v2 bytes (the cold-boot
//!   path: pure decode, zero naming rounds), plus decode MB/s.
//!
//! `speedup = build_ms / load_ms`; the README claims this exceeds 1 well
//! before 100k patterns.
//!
//! Usage: `snap_coldstart [out.json] [--check baseline.json]` (default
//! `BENCH_snap.json`). `--check` compares this run's decode MB/s (a rate,
//! so comparable across sizes) against the baseline's first row and exits
//! non-zero on a loss of more than 30%. `PDM_BENCH_SMOKE=1` shrinks sizes
//! and runs for CI smoke coverage.

use pdm_core::dict::{to_symbols, Sym};
use pdm_dict::Snapshot;
use pdm_pram::Ctx;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var_os("PDM_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Deterministic unique patterns, `p0000042`-style (8 symbols each).
fn patterns(n: usize) -> Vec<Vec<Sym>> {
    (0..n).map(|i| to_symbols(&format!("p{i:07}"))).collect()
}

/// First `"key": <number>` occurrence in a bench JSON (same minimal
/// parsing as the other bench binaries — the files are written by us).
fn extract(json: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let rest = &json[json.find(&tag)? + tag.len()..];
    let end = rest
        .find(|c: char| c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut out_path = String::from("BENCH_snap.json");
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--check" {
            check_path = args.next();
        } else {
            out_path = a;
        }
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let smoke = smoke();

    let (sizes, load_runs): (Vec<usize>, usize) = if smoke {
        (vec![1_000, 4_000], 3)
    } else {
        (vec![10_000, 100_000, 1_000_000], 5)
    };
    let ctx = Ctx::with_threads(host_cpus.min(4));

    let mut rows = Vec::new();
    for &n in &sizes {
        let pats = patterns(n);

        let t0 = Instant::now();
        let built = Snapshot::build_static(&ctx, 1, pats.clone()).unwrap();
        let build_ms = ms(t0.elapsed());

        let t0 = Instant::now();
        let bytes = built
            .to_sidecar_bytes()
            .expect("static snapshot serializes");
        let encode_ms = ms(t0.elapsed());

        let loads: Vec<f64> = (0..=load_runs)
            .map(|_| {
                let t0 = Instant::now();
                let snap = Snapshot::from_bytes(&ctx, &bytes).unwrap();
                let d = ms(t0.elapsed());
                assert!(snap.matcher().stats().cold_loaded, "load must not rebuild");
                assert_eq!(snap.pattern_count(), n);
                std::hint::black_box(snap);
                d
            })
            .skip(1) // warmup
            .collect();
        let load_ms = median_ms(loads);
        let mb = bytes.len() as f64 / (1 << 20) as f64;
        let load_mbps = mb / (load_ms / 1e3);
        let speedup = build_ms / load_ms;

        eprintln!(
            "{n:>8} patterns: build {build_ms:>9.2} ms, encode {encode_ms:>8.2} ms, \
             load {load_ms:>8.2} ms ({mb:.1} MiB, {load_mbps:.0} MB/s, {speedup:.1}x vs rebuild)"
        );
        rows.push(format!(
            "    {{\"patterns\": {n}, \"build_ms\": {build_ms:.3}, \"encode_ms\": {encode_ms:.3}, \
             \"sidecar_bytes\": {}, \"load_ms\": {load_ms:.3}, \"load_mbps\": {load_mbps:.1}, \
             \"speedup_vs_rebuild\": {speedup:.2}}}",
            bytes.len()
        ));
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"meta\": {{\"host_cpus\": {host_cpus}, \"smoke\": {smoke}, \
         \"load_runs\": {load_runs}}},\n  \
         \"cold_start\": {{\"rows\": [\n{}\n  ]}}\n}}\n",
        rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write snap json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    if let Some(base_path) = check_path {
        let base = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
        let cur = extract(&json, "load_mbps").expect("this run has load_mbps");
        let Some(want) = extract(&base, "load_mbps") else {
            eprintln!("check: load_mbps missing from baseline, skipping");
            return;
        };
        let floor = want * 0.70;
        if cur < floor {
            eprintln!("check FAIL: load_mbps {cur:.1} < 70% of baseline {want:.1}");
            std::process::exit(1);
        }
        eprintln!("check ok:   load_mbps {cur:.1} vs baseline {want:.1}");
    }
}
