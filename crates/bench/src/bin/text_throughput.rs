//! Text-side hot-path throughput, written to `BENCH_text.json`.
//!
//! Measures matching MB/s before and after the text-side overhaul
//! (DESIGN.md §11) for four workloads:
//!
//! * `static1d`   — §4 mixed-length matching. *after* = sentinel naming +
//!   frozen tables + session scratch; *before* = the retained text-local
//!   reference descent over the concurrent tables (`ConcView`).
//! * `equal_len`  — Theorem 11. *after* = per-level frozen probes;
//!   *before* = the live concurrent-table path (`match_texts_ref`).
//! * `smallalpha` — §5 small-σ matching. *after* = frozen block-tuple
//!   probe into session scratch (`match_text_into`); *before* = the live
//!   probe (`match_text_ref`), which allocates per call.
//! * `streaming`  — chunked cursor. *after* = session scratch via
//!   `find_all_into`; *before* = per-chunk window matching through the
//!   concurrent reference path (the pre-overhaul per-chunk cost).
//! * `sparse_prefilter` — `find_all` over random bytes where the dictionary
//!   occurs only where planted. *after* = the SWAR candidate prefilter
//!   (DESIGN.md §16) screening windows for KMR verification; *before* =
//!   the same matcher with the prefilter stripped (`set_prefilter(None)`).
//! * `dense_prefilter` — `find_all` over a periodic text saturated with
//!   matches, driving the prefilter into its runtime density bail-out.
//!   *after* must stay within noise of *before*: the bail-out caps the
//!   wasted scan at a fraction of the verification work.
//!
//! Each leg reports sequential MB/s plus pool MB/s at widths 1 / 2 / max.
//!
//! Usage: `text_throughput [out.json] [--check baseline.json]`
//!
//! `PDM_BENCH_SMOKE=1` keeps the full text size (so MB/s stays comparable
//! with a committed full run) but takes best-of-two samples and skips the
//! `before` legs, which exist for documentation, not regression tracking.
//! `--check` compares this run's *after* sequential MB/s per workload
//! against a committed baseline and exits non-zero if any workload lost
//! more than 50 % — wide enough to absorb this host's smoke-vs-full
//! spread (the allocation-heavy equal_len row lands up to ~1.6x apart
//! between modes), tight enough that a structural regression — the
//! prefilter's ~15x sparse win collapsing, a hot path reverting to
//! per-call allocation — still trips it.

use pdm_bench::timing::time_median;
use pdm_core::dict::Sym;
use pdm_core::equal_len::EqualLenMatcher;
use pdm_core::smallalpha::{SmallAlphaMatcher, SmallAlphaOutput, SmallAlphaScratch};
use pdm_core::static1d::{match_text_ref, ConcView, MatchOutput, StaticMatcher};
use pdm_core::TextScratch;
use pdm_pram::Ctx;
use pdm_stream::StreamMatcher;
use pdm_textgen::{strings, Alphabet};
use std::fmt::Write as _;
use std::sync::Arc;

const RUNS_FULL: usize = 3;
const CHUNK: usize = 64 << 10;

fn smoke() -> bool {
    std::env::var_os("PDM_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

fn widths() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut v = vec![1, 2];
    if !v.contains(&max) {
        v.push(max);
    }
    v
}

fn mbps(bytes: usize, d: std::time::Duration) -> f64 {
    bytes as f64 / (1 << 20) as f64 / d.as_secs_f64()
}

/// `{"1": 12.3, ...}` with widths as keys.
fn json_map(entries: &[(usize, f64)]) -> String {
    let mut s = String::from("{");
    for (i, (w, v)) in entries.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{w}\": {v:.2}");
    }
    s.push('}');
    s
}

/// Pull `workloads.<name>.after.seq_mbps` out of a baseline JSON produced
/// by this binary (hand-rolled to match the hand-rolled writer).
fn extract_after_seq(json: &str, name: &str) -> Option<f64> {
    let at = json.find(&format!("\"{name}\""))?;
    let rest = &json[at..];
    let rest = &rest[rest.find("\"after\"")?..];
    let rest = &rest[rest.find("\"seq_mbps\": ")? + "\"seq_mbps\": ".len()..];
    let end = rest
        .find(|c: char| c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut out_path = String::from("BENCH_text.json");
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--check" {
            check_path = args.next();
        } else {
            out_path = a;
        }
    }

    // Prime the allocator with a ladder of table-sized blocks. Freeing
    // mmap'd chunks lifts glibc's dynamic mmap threshold, after which the
    // per-call tables the matchers allocate recycle through the heap arena
    // instead of fresh kernel pages — the steady state a long-lived process
    // reaches anyway. Without this, whichever allocation-heavy leg runs
    // first measures page-fault throughput (~2x low), and smoke runs
    // disagree with full runs on legs ordered after a big "before" leg.
    for _ in 0..2 {
        for mb in [4usize, 8, 16, 32, 64] {
            let prime = vec![1u8; mb << 20];
            std::hint::black_box(&prime);
        }
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let text_syms: usize = 1 << 20;
    // Smoke takes 2 samples and time_median reports the larger (median of
    // an even count rounds up), biasing toward the warm steady state a
    // full median-of-3 run settles into.
    let runs = if smoke() { 2 } else { RUNS_FULL };

    // Mixed-length workload (static + streaming), pool_baseline's shape.
    let mut r = strings::rng(42);
    let mut text = strings::random_text(&mut r, Alphabet::Bytes, text_syms);
    let pats = strings::excerpt_dictionary(&mut r, &text, 64, 32, 64);
    strings::plant_occurrences(&mut r, &mut text, &pats, 512);
    let eq_pats = strings::equal_len_dictionary(&mut r, Alphabet::Bytes, 16, 64);
    // Small-alphabet workload: DNA text, one equal pattern length.
    let mut dna = strings::random_text(&mut r, Alphabet::Dna, text_syms);
    let sa_pats = strings::excerpt_dictionary(&mut r, &dna, 16, 9, 9);
    strings::plant_occurrences(&mut r, &mut dna, &sa_pats, 256);

    // Sparse-hit prefilter workload: random (non-excerpt) patterns are
    // absent from random bytes except where planted, so nearly every text
    // position is a prefilter miss and verification touches almost nothing.
    let mut sparse_text = strings::random_text(&mut r, Alphabet::Bytes, text_syms);
    let sparse_pats = strings::random_dictionary(&mut r, Alphabet::Bytes, 24, 8, 24);
    strings::plant_occurrences(&mut r, &mut sparse_text, &sparse_pats, 64);
    // Dense-hit prefilter workload: the analyzer accepts a rare-byte engine
    // ('z' is background-rare), but the text is wall-to-wall 'zeta', so the
    // screen saturates and every scan takes the runtime density bail-out
    // back to the unfiltered path.
    let dense_pats = pdm_core::dict::symbolize(&["zeta", "zone", "zinc"]);
    let dense_text: Vec<Sym> = "zeta"
        .bytes()
        .map(u32::from)
        .cycle()
        .take(text_syms)
        .collect();

    let bctx = Ctx::seq();
    let dict = Arc::new(StaticMatcher::build(&bctx, &pats).unwrap());
    let eq = EqualLenMatcher::new(&eq_pats).unwrap();
    let eq_texts = vec![text.clone()];
    let sa = SmallAlphaMatcher::build_with_l(&bctx, &sa_pats, 4, 3).unwrap();
    let sparse_on = StaticMatcher::build(&bctx, &sparse_pats).unwrap();
    let mut sparse_off = StaticMatcher::build(&bctx, &sparse_pats).unwrap();
    sparse_off.set_prefilter(None);
    let dense_on = StaticMatcher::build(&bctx, &dense_pats).unwrap();
    let mut dense_off = StaticMatcher::build(&bctx, &dense_pats).unwrap();
    dense_off.set_prefilter(None);
    eprintln!(
        "sparse_prefilter: {}; dense_prefilter: {}",
        sparse_on.prefilter_decision().describe(),
        dense_on.prefilter_decision().describe()
    );

    let d2 = Arc::clone(&dict);
    let d3 = Arc::clone(&dict);
    let d4 = Arc::clone(&dict);
    let t2 = text.clone();
    let t3 = text.clone();
    let t4 = text.clone();
    let dna2 = dna.clone();

    // Session-lifetime buffers for the "after" legs, reused across runs —
    // exactly how a long-lived session holds them.
    let mut scratch = TextScratch::new();
    let mut mo = MatchOutput::empty();
    let mut sa_scratch = SmallAlphaScratch::new();
    let mut sa_out = SmallAlphaOutput {
        longest_pattern: Vec::new(),
        longest_pattern_len: Vec::new(),
    };
    let (mut sp_on_s, mut sp_off_s, mut dn_on_s, mut dn_off_s) = (
        TextScratch::new(),
        TextScratch::new(),
        TextScratch::new(),
        TextScratch::new(),
    );
    let (mut sp_on_v, mut sp_off_v, mut dn_on_v, mut dn_off_v) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());

    type Leg<'a> = Box<dyn FnMut(&Ctx) + 'a>;
    let mut legs: Vec<(&str, &str, usize, Leg)> = vec![
        (
            "static1d",
            "after",
            text_syms,
            Box::new(move |ctx: &Ctx| {
                d2.match_into(ctx, &t2, &mut scratch, &mut mo);
                std::hint::black_box(&mo);
            }),
        ),
        (
            "static1d",
            "before",
            text_syms,
            Box::new(|ctx: &Ctx| {
                std::hint::black_box(match_text_ref(ctx, &ConcView(dict.tables()), &text));
            }),
        ),
        (
            "equal_len",
            "after",
            text_syms,
            Box::new(|ctx: &Ctx| {
                std::hint::black_box(eq.match_texts(ctx, &eq_texts));
            }),
        ),
        (
            "equal_len",
            "before",
            text_syms,
            Box::new(|ctx: &Ctx| {
                std::hint::black_box(eq.match_texts_ref(ctx, &eq_texts));
            }),
        ),
        (
            "smallalpha",
            "after",
            text_syms,
            Box::new(|ctx: &Ctx| {
                sa.match_text_into(ctx, &dna, &mut sa_scratch, &mut sa_out);
                std::hint::black_box(&sa_out);
            }),
        ),
        (
            "smallalpha",
            "before",
            text_syms,
            Box::new(|ctx: &Ctx| {
                std::hint::black_box(sa.match_text_ref(ctx, &dna2));
            }),
        ),
        (
            "streaming",
            "after",
            text_syms,
            Box::new(move |ctx: &Ctx| {
                let mut sm = StreamMatcher::new(Arc::clone(&d3));
                let mut out = Vec::new();
                for chunk in t3.chunks(CHUNK) {
                    sm.push_into(ctx, chunk, &mut out);
                }
                std::hint::black_box(out);
            }),
        ),
        (
            "sparse_prefilter",
            "after",
            text_syms,
            Box::new(|ctx: &Ctx| {
                sparse_on.find_all_into(ctx, &sparse_text, &mut sp_on_s, &mut sp_on_v);
                std::hint::black_box(&sp_on_v);
            }),
        ),
        (
            "sparse_prefilter",
            "before",
            text_syms,
            Box::new(|ctx: &Ctx| {
                sparse_off.find_all_into(ctx, &sparse_text, &mut sp_off_s, &mut sp_off_v);
                std::hint::black_box(&sp_off_v);
            }),
        ),
        (
            "dense_prefilter",
            "after",
            text_syms,
            Box::new(|ctx: &Ctx| {
                dense_on.find_all_into(ctx, &dense_text, &mut dn_on_s, &mut dn_on_v);
                std::hint::black_box(&dn_on_v);
            }),
        ),
        (
            "dense_prefilter",
            "before",
            text_syms,
            Box::new(|ctx: &Ctx| {
                dense_off.find_all_into(ctx, &dense_text, &mut dn_off_s, &mut dn_off_v);
                std::hint::black_box(&dn_off_v);
            }),
        ),
        (
            "streaming",
            "before",
            text_syms,
            Box::new(move |ctx: &Ctx| {
                // Pre-overhaul per-chunk cost: fresh window copy + the
                // text-local reference match over the concurrent tables.
                let overlap = d4.max_pattern_len().saturating_sub(1);
                let mut carry: Vec<Sym> = Vec::new();
                for chunk in t4.chunks(CHUNK) {
                    let mut window = carry.clone();
                    window.extend_from_slice(chunk);
                    std::hint::black_box(match_text_ref(ctx, &ConcView(d4.tables()), &window));
                    let keep = overlap.min(window.len());
                    carry = window[window.len() - keep..].to_vec();
                }
            }),
        ),
    ];

    // name -> (leg -> (seq, par)) preserving declaration order.
    let mut results: Vec<(String, Vec<(String, f64, Vec<(usize, f64)>)>)> = Vec::new();
    for (name, leg, bytes, work) in legs.iter_mut() {
        if smoke() && *leg == "before" {
            continue;
        }
        // One untimed warmup so session buffers/allocator pages are as warm
        // in a single smoke sample as in a full median-of-3 run.
        work(&Ctx::seq());
        let seq = mbps(*bytes, time_median(runs, || work(&Ctx::seq())));
        let par: Vec<(usize, f64)> = widths()
            .into_iter()
            .map(|w| {
                let ctx = Ctx::with_threads(w);
                (w, mbps(*bytes, time_median(runs, || work(&ctx))))
            })
            .collect();
        eprintln!("{name}/{leg}: seq {seq:.2} MB/s, par {par:?}");
        match results.iter_mut().find(|(n, _)| n == name) {
            Some((_, legs)) => legs.push((leg.to_string(), seq, par)),
            None => results.push((name.to_string(), vec![(leg.to_string(), seq, par)])),
        }
    }

    let mut sections = Vec::new();
    for (name, legs) in &results {
        let inner: Vec<String> = legs
            .iter()
            .map(|(leg, seq, par)| {
                format!(
                    "\"{leg}\": {{\"seq_mbps\": {seq:.2}, \"par_mbps\": {}}}",
                    json_map(par)
                )
            })
            .collect();
        sections.push(format!("    \"{name}\": {{{}}}", inner.join(", ")));
    }
    let json = format!(
        "{{\n  \"meta\": {{\"host_cpus\": {host_cpus}, \"text_bytes\": {text_syms}, \
         \"runs\": {runs}, \"smoke\": {}, \"note\": \"after = sentinel naming + frozen \
         tables + session scratch; before = text-local naming over concurrent \
         tables\"}},\n  \"workloads\": {{\n{}\n  }}\n}}\n",
        smoke(),
        sections.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    if let Some(base_path) = check_path {
        let base = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
        let mut failed = false;
        for (name, legs) in &results {
            let Some((_, cur, _)) = legs.iter().find(|(l, _, _)| l == "after") else {
                continue;
            };
            let Some(want) = extract_after_seq(&base, name) else {
                eprintln!("check: {name} missing from baseline, skipping");
                continue;
            };
            let floor = want * 0.50;
            if *cur < floor {
                eprintln!("check FAIL: {name} after/seq {cur:.2} MB/s < 50% of baseline {want:.2}");
                failed = true;
            } else {
                eprintln!("check ok:   {name} after/seq {cur:.2} MB/s vs baseline {want:.2}");
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
