//! Text-side hot-path throughput, written to `BENCH_text.json`.
//!
//! Measures matching MB/s before and after the text-side overhaul
//! (DESIGN.md §11) for four workloads:
//!
//! * `static1d`   — §4 mixed-length matching. *after* = sentinel naming +
//!   frozen tables + session scratch; *before* = the retained text-local
//!   reference descent over the concurrent tables (`ConcView`).
//! * `equal_len`  — Theorem 11. *after* = per-level frozen probes;
//!   *before* = the live concurrent-table path (`match_texts_ref`).
//! * `smallalpha` — §5 small-σ matching. *after* = frozen block-tuple
//!   probe; *before* = the live probe (`match_text_ref`).
//! * `streaming`  — chunked cursor. *after* = session scratch via
//!   `find_all_into`; *before* = per-chunk window matching through the
//!   concurrent reference path (the pre-overhaul per-chunk cost).
//!
//! Each leg reports sequential MB/s plus pool MB/s at widths 1 / 2 / max.
//!
//! Usage: `text_throughput [out.json] [--check baseline.json]`
//!
//! `PDM_BENCH_SMOKE=1` keeps the full text size (so MB/s stays comparable
//! with a committed full run) but takes a single sample and skips the
//! `before` legs, which exist for documentation, not regression tracking.
//! `--check` compares this run's *after* sequential MB/s per workload
//! against a committed baseline and exits non-zero if any workload lost
//! more than 30 % — wide enough to absorb single-sample noise, tight
//! enough to catch structural regressions.

use pdm_bench::timing::time_median;
use pdm_core::dict::Sym;
use pdm_core::equal_len::EqualLenMatcher;
use pdm_core::smallalpha::SmallAlphaMatcher;
use pdm_core::static1d::{match_text_ref, ConcView, MatchOutput, StaticMatcher};
use pdm_core::TextScratch;
use pdm_pram::Ctx;
use pdm_stream::StreamMatcher;
use pdm_textgen::{strings, Alphabet};
use std::fmt::Write as _;
use std::sync::Arc;

const RUNS_FULL: usize = 3;
const CHUNK: usize = 64 << 10;

fn smoke() -> bool {
    std::env::var_os("PDM_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

fn widths() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut v = vec![1, 2];
    if !v.contains(&max) {
        v.push(max);
    }
    v
}

fn mbps(bytes: usize, d: std::time::Duration) -> f64 {
    bytes as f64 / (1 << 20) as f64 / d.as_secs_f64()
}

/// `{"1": 12.3, ...}` with widths as keys.
fn json_map(entries: &[(usize, f64)]) -> String {
    let mut s = String::from("{");
    for (i, (w, v)) in entries.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{w}\": {v:.2}");
    }
    s.push('}');
    s
}

/// Pull `workloads.<name>.after.seq_mbps` out of a baseline JSON produced
/// by this binary (hand-rolled to match the hand-rolled writer).
fn extract_after_seq(json: &str, name: &str) -> Option<f64> {
    let at = json.find(&format!("\"{name}\""))?;
    let rest = &json[at..];
    let rest = &rest[rest.find("\"after\"")?..];
    let rest = &rest[rest.find("\"seq_mbps\": ")? + "\"seq_mbps\": ".len()..];
    let end = rest
        .find(|c: char| c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut out_path = String::from("BENCH_text.json");
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--check" {
            check_path = args.next();
        } else {
            out_path = a;
        }
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let text_syms: usize = 1 << 20;
    let runs = if smoke() { 1 } else { RUNS_FULL };

    // Mixed-length workload (static + streaming), pool_baseline's shape.
    let mut r = strings::rng(42);
    let mut text = strings::random_text(&mut r, Alphabet::Bytes, text_syms);
    let pats = strings::excerpt_dictionary(&mut r, &text, 64, 32, 64);
    strings::plant_occurrences(&mut r, &mut text, &pats, 512);
    let eq_pats = strings::equal_len_dictionary(&mut r, Alphabet::Bytes, 16, 64);
    // Small-alphabet workload: DNA text, one equal pattern length.
    let mut dna = strings::random_text(&mut r, Alphabet::Dna, text_syms);
    let sa_pats = strings::excerpt_dictionary(&mut r, &dna, 16, 9, 9);
    strings::plant_occurrences(&mut r, &mut dna, &sa_pats, 256);

    let bctx = Ctx::seq();
    let dict = Arc::new(StaticMatcher::build(&bctx, &pats).unwrap());
    let eq = EqualLenMatcher::new(&eq_pats).unwrap();
    let eq_texts = vec![text.clone()];
    let sa = SmallAlphaMatcher::build_with_l(&bctx, &sa_pats, 4, 3).unwrap();

    let d2 = Arc::clone(&dict);
    let d3 = Arc::clone(&dict);
    let d4 = Arc::clone(&dict);
    let t2 = text.clone();
    let t3 = text.clone();
    let t4 = text.clone();
    let dna2 = dna.clone();

    // Session-lifetime buffers for the "after" legs, reused across runs —
    // exactly how a long-lived session holds them.
    let mut scratch = TextScratch::new();
    let mut mo = MatchOutput::empty();

    type Leg<'a> = Box<dyn FnMut(&Ctx) + 'a>;
    let mut legs: Vec<(&str, &str, usize, Leg)> = vec![
        (
            "static1d",
            "after",
            text_syms,
            Box::new(move |ctx: &Ctx| {
                d2.match_into(ctx, &t2, &mut scratch, &mut mo);
                std::hint::black_box(&mo);
            }),
        ),
        (
            "static1d",
            "before",
            text_syms,
            Box::new(|ctx: &Ctx| {
                std::hint::black_box(match_text_ref(ctx, &ConcView(dict.tables()), &text));
            }),
        ),
        (
            "equal_len",
            "after",
            text_syms,
            Box::new(|ctx: &Ctx| {
                std::hint::black_box(eq.match_texts(ctx, &eq_texts));
            }),
        ),
        (
            "equal_len",
            "before",
            text_syms,
            Box::new(|ctx: &Ctx| {
                std::hint::black_box(eq.match_texts_ref(ctx, &eq_texts));
            }),
        ),
        (
            "smallalpha",
            "after",
            text_syms,
            Box::new(|ctx: &Ctx| {
                std::hint::black_box(sa.match_text(ctx, &dna));
            }),
        ),
        (
            "smallalpha",
            "before",
            text_syms,
            Box::new(|ctx: &Ctx| {
                std::hint::black_box(sa.match_text_ref(ctx, &dna2));
            }),
        ),
        (
            "streaming",
            "after",
            text_syms,
            Box::new(move |ctx: &Ctx| {
                let mut sm = StreamMatcher::new(Arc::clone(&d3));
                let mut out = Vec::new();
                for chunk in t3.chunks(CHUNK) {
                    sm.push_into(ctx, chunk, &mut out);
                }
                std::hint::black_box(out);
            }),
        ),
        (
            "streaming",
            "before",
            text_syms,
            Box::new(move |ctx: &Ctx| {
                // Pre-overhaul per-chunk cost: fresh window copy + the
                // text-local reference match over the concurrent tables.
                let overlap = d4.max_pattern_len().saturating_sub(1);
                let mut carry: Vec<Sym> = Vec::new();
                for chunk in t4.chunks(CHUNK) {
                    let mut window = carry.clone();
                    window.extend_from_slice(chunk);
                    std::hint::black_box(match_text_ref(ctx, &ConcView(d4.tables()), &window));
                    let keep = overlap.min(window.len());
                    carry = window[window.len() - keep..].to_vec();
                }
            }),
        ),
    ];

    // name -> (leg -> (seq, par)) preserving declaration order.
    let mut results: Vec<(String, Vec<(String, f64, Vec<(usize, f64)>)>)> = Vec::new();
    for (name, leg, bytes, work) in legs.iter_mut() {
        if smoke() && *leg == "before" {
            continue;
        }
        let seq = mbps(*bytes, time_median(runs, || work(&Ctx::seq())));
        let par: Vec<(usize, f64)> = widths()
            .into_iter()
            .map(|w| {
                let ctx = Ctx::with_threads(w);
                (w, mbps(*bytes, time_median(runs, || work(&ctx))))
            })
            .collect();
        eprintln!("{name}/{leg}: seq {seq:.2} MB/s, par {par:?}");
        match results.iter_mut().find(|(n, _)| n == name) {
            Some((_, legs)) => legs.push((leg.to_string(), seq, par)),
            None => results.push((name.to_string(), vec![(leg.to_string(), seq, par)])),
        }
    }

    let mut sections = Vec::new();
    for (name, legs) in &results {
        let inner: Vec<String> = legs
            .iter()
            .map(|(leg, seq, par)| {
                format!(
                    "\"{leg}\": {{\"seq_mbps\": {seq:.2}, \"par_mbps\": {}}}",
                    json_map(par)
                )
            })
            .collect();
        sections.push(format!("    \"{name}\": {{{}}}", inner.join(", ")));
    }
    let json = format!(
        "{{\n  \"meta\": {{\"host_cpus\": {host_cpus}, \"text_bytes\": {text_syms}, \
         \"runs\": {runs}, \"smoke\": {}, \"note\": \"after = sentinel naming + frozen \
         tables + session scratch; before = text-local naming over concurrent \
         tables\"}},\n  \"workloads\": {{\n{}\n  }}\n}}\n",
        smoke(),
        sections.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    if let Some(base_path) = check_path {
        let base = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
        let mut failed = false;
        for (name, legs) in &results {
            let Some((_, cur, _)) = legs.iter().find(|(l, _, _)| l == "after") else {
                continue;
            };
            let Some(want) = extract_after_seq(&base, name) else {
                eprintln!("check: {name} missing from baseline, skipping");
                continue;
            };
            let floor = want * 0.70;
            if *cur < floor {
                eprintln!("check FAIL: {name} after/seq {cur:.2} MB/s < 70% of baseline {want:.2}");
                failed = true;
            } else {
                eprintln!("check ok:   {name} after/seq {cur:.2} MB/s vs baseline {want:.2}");
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
