//! Connection-scale benchmark for the serving tiers, written to
//! `BENCH_conns.json`.
//!
//! Drives N concurrent sessions through a live in-process server and
//! reports, per leg, aggregate throughput (MB/s over a fixed total byte
//! budget, so legs are comparable) and p99 session-completion latency:
//!
//! * `threaded_base` — the blocking tier (two OS threads per connection)
//!   at its comfortable scale.
//! * `reactor_base` / `reactor_10x` / `reactor_32x` — the epoll reactor
//!   tier at the same scale, 10× it, and 32× it (full runs only).
//!
//! The headline `session_ratio` is the reactor tier's largest completed
//! leg over the threaded leg — the "tens of thousands of connections on a
//! handful of threads" claim in DESIGN.md §15, scaled to the CI box.
//!
//! The dictionary is chosen so the text cannot match (patterns contain a
//! byte the text never uses): the bench measures frame plumbing and
//! session scheduling, not matcher throughput (that is `text_throughput`).
//!
//! Usage: `conn_scale [out.json] [--check baseline.json]`
//!
//! `PDM_BENCH_SMOKE=1` shrinks the ladder (32/320 sessions, 16 MiB total)
//! and skips the 32× leg. `--check` compares each leg's MB/s against a
//! committed baseline and exits non-zero on a loss of more than 50% (wider
//! than the matcher benches: the smoke ladder runs fewer chunks per
//! session than a full run, so session overhead weighs more).

use pdm_core::dict::Sym;
use pdm_core::static1d::StaticMatcher;
use pdm_pram::Ctx;
use pdm_stream::proto::{
    decode_summary, read_frame, write_frame, TAG_CHUNK, TAG_CLOSE, TAG_SUMMARY,
};
use pdm_stream::{ServeMode, Server, ServerConfig};
use std::fmt::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CHUNK: usize = 4 << 10;
const CLIENT_THREADS: usize = 8;

fn smoke() -> bool {
    std::env::var_os("PDM_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

/// A dictionary the bench text can never match: every pattern contains
/// byte 255, the text stays below 250.
fn no_match_dict() -> Arc<StaticMatcher> {
    let pats: Vec<Vec<Sym>> = (0..8u32)
        .map(|i| vec![255, 254, i, 255, 253 - i % 4])
        .collect();
    Arc::new(StaticMatcher::build(&Ctx::seq(), &pats).unwrap())
}

fn chunk_payload() -> Vec<u8> {
    // Deterministic pseudo-random bytes in 0..250 (xorshift).
    let mut x = 0x9e3779b9u32;
    (0..CHUNK)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            (x % 250) as u8
        })
        .collect()
}

struct Leg {
    name: &'static str,
    mode: ServeMode,
    sessions: usize,
    mbps: f64,
    p99_ms: f64,
    completed: usize,
}

/// Best of `reps` runs of a leg: the box this runs on is shared and
/// single-CPU, and a capacity claim is about what the tier *can* sustain,
/// not what it does while a neighbour compiles.
fn run_leg_best(
    name: &'static str,
    mode: ServeMode,
    sessions: usize,
    total_bytes: usize,
    reps: usize,
) -> Leg {
    let mut best: Option<Leg> = None;
    for _ in 0..reps {
        let leg = run_leg(name, mode, sessions, total_bytes);
        if best.as_ref().is_none_or(|b| leg.mbps > b.mbps) {
            best = Some(leg);
        }
    }
    best.expect("at least one rep")
}

/// Run `sessions` concurrent sessions against a fresh server in `mode`,
/// streaming ~`total_bytes` split evenly across them.
fn run_leg(name: &'static str, mode: ServeMode, sessions: usize, total_bytes: usize) -> Leg {
    let cfg = ServerConfig {
        serve_mode: mode,
        ..Default::default()
    };
    let server = Server::bind(("127.0.0.1", 0), no_match_dict(), cfg).expect("bind");
    let addr = server.local_addr();

    let chunks_per = (total_bytes / sessions / CHUNK).max(1);
    let payload = Arc::new(chunk_payload());
    let actual_total = sessions * chunks_per * CHUNK;

    // Connect everything up front: holding N concurrent connections *is*
    // the thing under test.
    let socks: Vec<TcpStream> = (0..sessions)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect");
            s.set_nodelay(true).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
            s
        })
        .collect();

    let threads = CLIENT_THREADS.min(sessions);
    let per_thread = sessions.div_ceil(threads);
    let t0 = Instant::now();
    let handles: Vec<_> = socks
        .chunks(per_thread)
        .map(|slice| {
            let socks: Vec<TcpStream> = slice.iter().map(|s| s.try_clone().unwrap()).collect();
            let payload = Arc::clone(&payload);
            std::thread::spawn(move || {
                // Round-robin writes keep every session concurrently
                // mid-stream instead of draining them one by one.
                let mut socks = socks;
                for _ in 0..chunks_per {
                    for s in &mut socks {
                        write_frame(s, TAG_CHUNK, &payload).expect("chunk");
                    }
                }
                for s in &mut socks {
                    write_frame(s, TAG_CLOSE, &[]).expect("close");
                }
                let mut done: Vec<(bool, f64)> = Vec::with_capacity(socks.len());
                for s in &mut socks {
                    let mut ok = false;
                    loop {
                        match read_frame(s) {
                            Ok(Some((TAG_SUMMARY, p))) => {
                                let sm = decode_summary(&p).expect("summary");
                                assert_eq!(
                                    sm.consumed,
                                    (chunks_per * CHUNK) as u64,
                                    "short session"
                                );
                                ok = true;
                                break;
                            }
                            Ok(Some(_)) => continue,
                            Ok(None) | Err(_) => break,
                        }
                    }
                    done.push((ok, t0.elapsed().as_secs_f64() * 1e3));
                }
                done
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::with_capacity(sessions);
    let mut completed = 0usize;
    for h in handles {
        for (ok, ms) in h.join().expect("client thread") {
            if ok {
                completed += 1;
            }
            latencies.push(ms);
        }
    }
    let wall = t0.elapsed();
    let snap = server.metrics();
    if std::env::var_os("PDM_BENCH_DEBUG").is_some() {
        eprintln!(
            "  {name}: wakeups {} events {} frames {} partial_writes {} stalls {} qmax {}",
            snap.reactor_wakeups,
            snap.reactor_events,
            snap.frames_decoded,
            snap.partial_writes,
            snap.stalls,
            snap.queue_depth_max
        );
    }
    drop(socks);
    server.shutdown();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let p99 = latencies[((latencies.len() - 1) as f64 * 0.99).round() as usize];
    let mbps = actual_total as f64 / (1 << 20) as f64 / wall.as_secs_f64();
    eprintln!(
        "{name}: {sessions} sessions x {chunks_per} chunks, {completed} completed, \
         {mbps:.2} MB/s, p99 {p99:.1} ms"
    );
    Leg {
        name,
        mode,
        sessions,
        mbps,
        p99_ms: p99,
        completed,
    }
}

/// Pull `legs.<name>.mbps` out of a baseline produced by this binary.
fn extract_mbps(json: &str, name: &str) -> Option<f64> {
    let at = json.find(&format!("\"{name}\""))?;
    let rest = &json[at..];
    let rest = &rest[rest.find("\"mbps\": ")? + "\"mbps\": ".len()..];
    let end = rest
        .find(|c: char| c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut out_path = String::from("BENCH_conns.json");
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--check" {
            check_path = args.next();
        } else {
            out_path = a;
        }
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The byte budget must dwarf per-session setup cost even on the
    // largest ladder, or big legs measure session churn instead of
    // sustained streaming.
    let (base, total_bytes) = if smoke() {
        (32usize, 16 << 20)
    } else {
        (128usize, 96 << 20)
    };

    let reps = if smoke() { 1 } else { 3 };
    let mut legs = vec![
        run_leg_best(
            "threaded_base",
            ServeMode::Threaded,
            base,
            total_bytes,
            reps,
        ),
        run_leg_best("reactor_base", ServeMode::Reactor, base, total_bytes, reps),
        run_leg_best(
            "reactor_10x",
            ServeMode::Reactor,
            base * 10,
            total_bytes,
            reps,
        ),
    ];
    if !smoke() {
        legs.push(run_leg_best(
            "reactor_32x",
            ServeMode::Reactor,
            base * 32,
            total_bytes,
            reps,
        ));
    }

    let threaded = &legs[0];
    let reactor_max = legs
        .iter()
        .filter(|l| l.mode == ServeMode::Reactor && l.completed == l.sessions)
        .max_by_key(|l| l.sessions)
        .expect("a completed reactor leg");
    let session_ratio = reactor_max.sessions as f64 / threaded.sessions as f64;
    let at_10x = legs.iter().find(|l| l.name == "reactor_10x").unwrap();

    let mut leg_json = Vec::new();
    for l in &legs {
        let mode = match l.mode {
            ServeMode::Reactor => "reactor",
            ServeMode::Threaded => "threaded",
        };
        leg_json.push(format!(
            "    \"{}\": {{\"mode\": \"{mode}\", \"sessions\": {}, \"completed\": {}, \
             \"mbps\": {:.2}, \"p99_ms\": {:.1}}}",
            l.name, l.sessions, l.completed, l.mbps, l.p99_ms
        ));
    }
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"meta\": {{\"host_cpus\": {host_cpus}, \"total_bytes\": {total_bytes}, \
         \"chunk_bytes\": {CHUNK}, \"smoke\": {}, \"note\": \"fixed total byte budget per \
         leg; non-matching dictionary, so this measures frame plumbing and session \
         scheduling, not the matcher\"}},\n  \"legs\": {{\n{}\n  }},\n  \
         \"headline\": {{\"threaded_sessions\": {}, \"reactor_max_sessions\": {}, \
         \"session_ratio\": {session_ratio:.1}, \"threaded_mbps\": {:.2}, \
         \"reactor_mbps_at_10x\": {:.2}, \"reactor_mbps_at_max\": {:.2}}}\n}}\n",
        smoke(),
        leg_json.join(",\n"),
        threaded.sessions,
        reactor_max.sessions,
        threaded.mbps,
        at_10x.mbps,
        reactor_max.mbps,
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    if let Some(base_path) = check_path {
        let base = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
        let mut failed = false;
        for l in &legs {
            let Some(want) = extract_mbps(&base, l.name) else {
                eprintln!("check: {} missing from baseline, skipping", l.name);
                continue;
            };
            // Wider margin than the matcher benches: smoke ladders run
            // fewer chunks per session than the committed full run, so
            // per-session overhead weighs more before any regression.
            let floor = want * 0.50;
            if l.mbps < floor {
                eprintln!(
                    "check FAIL: {} {:.2} MB/s < 50% of baseline {want:.2}",
                    l.name, l.mbps
                );
                failed = true;
            } else {
                eprintln!(
                    "check ok:   {} {:.2} MB/s vs baseline {want:.2}",
                    l.name, l.mbps
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
