//! Live dictionary update baseline, written to `BENCH_dict.json`.
//!
//! Two questions the epoch-swap design hinges on:
//!
//! 1. **Crossover** — per batch size, is it cheaper to apply the staged
//!    ops through `DynamicMatcher` (§6 incremental path) or to rebuild
//!    the whole snapshot in parallel (§4)? The store's auto policy picks
//!    by staged-symbol ratio; this measures both paths forced, so the
//!    reported crossover validates (or indicts) the default threshold.
//! 2. **Swap latency under load** — how long does commit+publish take
//!    while sessions are streaming, and does a swap dent throughput?
//!    Publishing is a pointer swap, so the committed-to-visible latency
//!    should track the rebuild cost alone.
//!
//! Usage: `dict_swap [out.json]` (default `BENCH_dict.json`).
//! `PDM_BENCH_SMOKE=1` shrinks sizes and runs for CI smoke coverage.

use pdm_core::dict::{to_symbols, Sym};
use pdm_dict::{DictStore, SnapshotPath};
use pdm_pram::Ctx;
use pdm_stream::{DictAdmin, GlobalMetrics, ServiceConfig, ShardedService};
use pdm_textgen::{strings, Alphabet};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var_os("PDM_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Deterministic unique patterns: `base000042`-style, so adds never
/// collide with the seed set or each other.
fn pat(prefix: &str, i: usize) -> Vec<Sym> {
    to_symbols(&format!("{prefix}{i:06}"))
}

/// Fresh store holding `base` committed patterns.
fn seeded(ctx: &Ctx, base: usize) -> DictStore {
    let mut store = DictStore::in_memory();
    for i in 0..base {
        store.stage_add(&pat("base", i)).unwrap();
    }
    store.commit(ctx).unwrap();
    store
}

/// Median commit latency for `batch` staged adds on top of `base`
/// committed patterns, forcing the given rebuild path. The store/stage
/// setup is rebuilt per run and kept off the clock.
fn commit_latency(ctx: &Ctx, runs: usize, base: usize, batch: usize, path: SnapshotPath) -> f64 {
    let mut samples = Vec::with_capacity(runs + 1);
    for _ in 0..=runs {
        let mut store = seeded(ctx, base);
        for j in 0..batch {
            store.stage_add(&pat("add", j)).unwrap();
        }
        let t0 = Instant::now();
        let out = store.commit_with(ctx, Some(path)).unwrap();
        samples.push(t0.elapsed());
        std::hint::black_box(out);
    }
    samples.remove(0); // warmup
    samples.sort_unstable();
    ms(samples[samples.len() / 2])
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_dict.json".into());
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let smoke = smoke();

    let (base, batches, runs) = if smoke {
        (64, vec![1usize, 8, 32], 1)
    } else {
        (512, vec![1usize, 4, 16, 64, 256], 5)
    };
    let ctx = Ctx::with_threads(host_cpus.min(4));

    // --- 1. incremental apply vs full rebuild crossover -----------------
    let mut rows = Vec::new();
    let mut crossover: Option<usize> = None;
    for &k in &batches {
        let inc = commit_latency(&ctx, runs, base, k, SnapshotPath::Incremental);
        let full = commit_latency(&ctx, runs, base, k, SnapshotPath::FullRebuild);
        if crossover.is_none() && full <= inc {
            crossover = Some(k);
        }
        eprintln!("batch {k:>4}: incremental {inc:.3} ms, full rebuild {full:.3} ms");
        rows.push(format!(
            "    {{\"batch\": {k}, \"incremental_ms\": {inc:.3}, \"full_rebuild_ms\": {full:.3}}}"
        ));
    }

    // --- 2. swap latency while sessions stream --------------------------
    let sessions = if smoke { 2 } else { 4 };
    let text_syms: usize = if smoke { 32 << 10 } else { 512 << 10 };
    let chunk = if smoke { 4 << 10 } else { 64 << 10 };
    let commits = if smoke { 2 } else { 8 };

    let metrics = GlobalMetrics::default();
    // Idle reference: commit+publish with no traffic.
    let admin = DictAdmin::new(seeded(&ctx, base), ctx.exec.clone()).unwrap();
    let idle: Vec<f64> = (0..commits)
        .map(|c| {
            admin.add(&pat("idle", c)).unwrap();
            let t0 = Instant::now();
            admin.commit(&metrics).unwrap();
            ms(t0.elapsed())
        })
        .collect();
    let idle_ms = median_ms(idle);

    let admin = DictAdmin::new(seeded(&ctx, base), ctx.exec.clone()).unwrap();
    let svc = ShardedService::start_versioned(
        admin.handle(),
        ServiceConfig {
            workers: 2,
            queue_cap: 8,
            ..ServiceConfig::default()
        },
    );
    let mut r = strings::rng(7);
    let text = strings::random_text(&mut r, Alphabet::Bytes, text_syms);

    let t_load = Instant::now();
    let loaded: Vec<f64> = std::thread::scope(|s| {
        for _ in 0..sessions {
            let sess = svc.open();
            let text = &text;
            s.spawn(move || {
                for c in text.chunks(chunk) {
                    sess.push(c.to_vec()).unwrap();
                }
                std::hint::black_box(sess.close());
            });
        }
        (0..commits)
            .map(|c| {
                admin.add(&pat("load", c)).unwrap();
                let t0 = Instant::now();
                admin.commit(&metrics).unwrap();
                let d = ms(t0.elapsed());
                std::thread::sleep(Duration::from_millis(2));
                d
            })
            .collect()
    });
    let wall = t_load.elapsed();
    let loaded_ms = median_ms(loaded);
    let mbps = (sessions * text_syms) as f64 / (1 << 20) as f64 / wall.as_secs_f64();
    let swaps = svc.metrics().epoch_adoptions;
    svc.shutdown();
    eprintln!(
        "swap latency: idle {idle_ms:.3} ms, under load {loaded_ms:.3} ms \
         ({sessions} sessions, {mbps:.2} MB/s, {swaps} adoptions)"
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"meta\": {{\"host_cpus\": {host_cpus}, \"smoke\": {smoke}, \
         \"base_patterns\": {base}, \"runs\": {runs}}},\n  \
         \"crossover\": {{\"rows\": [\n{}\n  ], \"full_beats_incremental_at_batch\": {}}},\n  \
         \"swap_under_load\": {{\"sessions\": {sessions}, \"text_syms_per_session\": {text_syms}, \
         \"commits\": {commits}, \"idle_commit_ms\": {idle_ms:.3}, \
         \"loaded_commit_ms\": {loaded_ms:.3}, \"stream_mbps\": {mbps:.2}, \
         \"epoch_adoptions\": {swaps}}}\n}}\n",
        rows.join(",\n"),
        crossover.map_or("null".into(), |k| k.to_string()),
    );
    std::fs::write(&out_path, &json).expect("write dict json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
