//! Minimal aligned-table printer (markdown-compatible output).

/// A column-aligned table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as a markdown table with aligned pipes.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                s.push(' ');
                s.push_str(c);
                s.push_str(&" ".repeat(pad));
                s.push_str(" |");
            }
            s
        };
        let mut out = line(&self.headers);
        out.push('\n');
        out.push('|');
        for w in &width {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format helpers for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

pub fn int(x: u64) -> String {
    x.to_string()
}

pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["m", "work"]);
        t.row(&["8".into(), "123".into()]);
        t.row(&["4096".into(), "7".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| m "));
        assert!(lines[1].starts_with("|---"));
        // All rows have the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        Table::new(&["a", "b"]).row(&["x".into()]);
    }
}
