//! Wall-clock measurement: median of repeated runs.

use std::time::{Duration, Instant};

/// Median wall time of `runs` executions of `f` (after one warmup).
pub fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(runs >= 1);
    let _warm = f();
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let r = f();
            let d = t0.elapsed();
            std::hint::black_box(r);
            d
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let d = time_median(3, || {
            let mut s = 0u64;
            for i in 0..10_000u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn median_of_single_run() {
        let d = time_median(1, || 42);
        assert!(d < Duration::from_secs(1));
    }
}
