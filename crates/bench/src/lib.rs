//! # pdm-bench — experiment harness
//!
//! Shared machinery for the `experiments` binary (which regenerates the
//! EXPERIMENTS.md tables, one per claimed bound of the paper) and the
//! criterion micro-benchmarks.
//!
//! The paper itself reports no measurements, so the "tables" reproduced
//! here are its *claims*: for each theorem, the harness measures PRAM
//! rounds and work on the instrumented substrate, fits the predicted shape
//! (e.g. `work/n ∝ log₂ m`), and reports wall-clock against the baselines
//! where a practitioner would care.

pub mod fit;
pub mod table;
pub mod timing;

pub use fit::{linear_fit, Fit};
pub use table::Table;
pub use timing::time_median;
