//! Least-squares fits for the shape checks.
//!
//! Each experiment asserts a *shape*, e.g. "text work per symbol is linear
//! in `log₂ m`". We fit `y = a + b·x` and report the coefficient of
//! determination so EXPERIMENTS.md can state how well the exponent holds.

/// Result of a simple linear regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    pub intercept: f64,
    pub slope: f64,
    /// Coefficient of determination (1.0 = perfect line).
    pub r2: f64,
}

/// Ordinary least squares for `y = a + b·x`. Panics on fewer than 2 points.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Fit {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = my - slope * mx;
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Fit {
        intercept,
        slope,
        r2,
    }
}

/// Max/min ratio of a series — the "is it flat?" check for optimal-work
/// claims (E5/E9).
pub fn flatness(ys: &[f64]) -> f64 {
    let mx = ys.iter().cloned().fold(f64::MIN, f64::max);
    let mn = ys.iter().cloned().fold(f64::MAX, f64::min);
    if mn <= 0.0 {
        f64::INFINITY
    } else {
        mx / mn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let f = linear_fit(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_high_r2() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 5.0 + 3.0 * x + (x * 7.0).sin() * 0.1)
            .collect();
        let f = linear_fit(&xs, &ys);
        assert!((f.slope - 3.0).abs() < 0.05);
        assert!(f.r2 > 0.999);
    }

    #[test]
    fn constant_series() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
        assert_eq!(flatness(&[4.0, 4.0]), 1.0);
    }

    #[test]
    fn flatness_ratio() {
        assert!((flatness(&[2.0, 3.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
