//! Criterion bench for E4: the §4.4 small-alphabet matcher across collapse
//! parameters `L`, against the base §4 matcher on the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdm_core::smallalpha::SmallAlphaMatcher;
use pdm_core::static1d::StaticMatcher;
use pdm_pram::Ctx;
use pdm_textgen::{strings, Alphabet};

fn bench(c: &mut Criterion) {
    let n = 1 << 16;
    let m = 512usize;
    let mut r = strings::rng(9);
    let text = strings::random_text(&mut r, Alphabet::Binary, n);
    let pats = strings::random_dictionary(&mut r, Alphabet::Binary, 8, m / 2, m);

    let mut g = c.benchmark_group("small_alpha_match");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    for l in [1usize, 2, 4] {
        let bctx = Ctx::seq();
        let sm = SmallAlphaMatcher::build_with_l(&bctx, &pats, 2, l).unwrap();
        let ctx = Ctx::par();
        g.bench_with_input(BenchmarkId::new("L", l), &l, |b, _| {
            b.iter(|| sm.match_text(&ctx, &text))
        });
    }
    {
        let bctx = Ctx::seq();
        let base = StaticMatcher::build(&bctx, &pats).unwrap();
        let ctx = Ctx::par();
        g.bench_function("base_section4", |b| b.iter(|| base.match_text(&ctx, &text)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
