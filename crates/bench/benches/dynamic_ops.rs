//! Criterion bench for E7/E8: dynamic dictionary operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdm_core::dynamic::DynamicMatcher;
use pdm_pram::Ctx;
use pdm_textgen::{strings, Alphabet};

fn bench(c: &mut Criterion) {
    let ctx = Ctx::seq();

    // Insert cost across pattern lengths (fresh pattern per iteration by
    // cycling through disjoint symbol ranges).
    let mut g = c.benchmark_group("dynamic_insert");
    g.sample_size(10);
    for &lam in &[64usize, 1024] {
        g.bench_with_input(BenchmarkId::new("lambda", lam), &lam, |b, _| {
            let mut d = DynamicMatcher::new();
            let mut tick = 0u32;
            b.iter(|| {
                tick += 1;
                let p: Vec<u32> = (0..lam as u32).map(|i| i * 7 + tick * 100_000).collect();
                d.insert(&ctx, &p).unwrap()
            });
        });
    }
    g.finish();

    // Insert+delete round trips (stamp-counting churn).
    let mut g = c.benchmark_group("dynamic_insert_delete");
    g.sample_size(10);
    g.bench_function("roundtrip_256", |b| {
        let mut d = DynamicMatcher::new();
        let mut r = strings::rng(1);
        // Persistent background dictionary so tables are non-trivial.
        for p in strings::random_dictionary(&mut r, Alphabet::Bytes, 128, 8, 32) {
            d.insert(&ctx, &p).unwrap();
        }
        let mut tick = 0u32;
        b.iter(|| {
            tick += 1;
            let p: Vec<u32> = (0..256u32).map(|i| i * 3 + tick * 1_000_000).collect();
            d.insert(&ctx, &p).unwrap();
            d.delete(&ctx, &p).unwrap()
        });
    });
    g.finish();

    // Match against a live dynamic dictionary.
    let mut g = c.benchmark_group("dynamic_match");
    g.sample_size(10);
    let mut r = strings::rng(2);
    let mut text = strings::random_text(&mut r, Alphabet::Bytes, 1 << 16);
    let pats = strings::excerpt_dictionary(&mut r, &text, 64, 8, 64);
    strings::plant_occurrences(&mut r, &mut text, &pats, 64);
    let mut d = DynamicMatcher::new();
    for p in &pats {
        d.insert(&ctx, p).unwrap();
    }
    let mctx = Ctx::par();
    g.bench_function("match_64k", |b| b.iter(|| d.match_text(&mctx, &text)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
