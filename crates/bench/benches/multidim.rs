//! Criterion bench for E9: 2-D/3-D single-pattern matching via §7 dimension
//! reduction, versus Baker–Bird.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdm_baselines::{baker_bird, naive};
use pdm_core::multidim::{match_tensor, Tensor};
use pdm_pram::Ctx;
use pdm_textgen::{grid, strings, Alphabet};

fn bench(c: &mut Criterion) {
    let side = 192usize;
    let mut g = c.benchmark_group("multidim_2d");
    g.sample_size(10);
    g.throughput(Throughput::Elements((side * side) as u64));
    for &m in &[16usize, 64] {
        let mut r = strings::rng(m as u64);
        let tg = grid::random_grid(&mut r, Alphabet::Dna, side, side);
        let pg = grid::excerpt_square_dictionary(&mut r, &tg, 1, m, m)
            .pop()
            .unwrap();
        let text = Tensor::new(vec![side, side], tg.data.clone());
        let pat = Tensor::new(vec![m, m], pg.data.clone());
        let ctx = Ctx::par();
        g.bench_with_input(BenchmarkId::new("reduction/m", m), &m, |b, _| {
            b.iter(|| match_tensor(&ctx, &text, &pat))
        });
        let ntext = naive::Grid::new(side, side, tg.data.clone());
        let npat = naive::Grid::new(m, m, pg.data.clone());
        g.bench_with_input(BenchmarkId::new("baker_bird/m", m), &m, |b, _| {
            b.iter(|| baker_bird::find_pattern_2d(&ntext, &npat))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("multidim_3d");
    g.sample_size(10);
    let dim = 32usize;
    let mut r = strings::rng(3);
    let text = Tensor::from_fn(vec![dim, dim, dim], |_| {
        use rand::Rng;
        r.gen_range(0..4u32)
    });
    let mut pdata = Vec::new();
    for i in 0..6 {
        for j in 0..6 {
            for k in 0..6 {
                pdata.push(text.data[text.offset(&[4 + i, 5 + j, 6 + k])]);
            }
        }
    }
    let pat = Tensor::new(vec![6, 6, 6], pdata);
    let ctx = Ctx::par();
    g.bench_function("cube_32_pattern_6", |b| {
        b.iter(|| match_tensor(&ctx, &text, &pat))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
