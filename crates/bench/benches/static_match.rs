//! Criterion bench for E3: full static dictionary matching versus the
//! sequential and chunked-parallel Aho–Corasick baselines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdm_baselines::{chunked_ac, AhoCorasick};
use pdm_core::static1d::StaticMatcher;
use pdm_pram::Ctx;
use pdm_textgen::{strings, Alphabet};

fn bench(c: &mut Criterion) {
    let n = 1 << 18;
    let m = 64usize;
    let mut r = strings::rng(42);
    let mut text = strings::random_text(&mut r, Alphabet::Bytes, n);
    let pats = strings::excerpt_dictionary(&mut r, &text, 64, m / 2, m);
    strings::plant_occurrences(&mut r, &mut text, &pats, 256);

    let bctx = Ctx::seq();
    let matcher = StaticMatcher::build(&bctx, &pats).unwrap();
    let ac = AhoCorasick::new(&pats);

    let mut g = c.benchmark_group("static_match");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    let ctx = Ctx::par();
    g.bench_function("shrink_and_spawn", |b| {
        b.iter(|| matcher.match_text(&ctx, &text))
    });
    g.bench_function("aho_corasick", |b| {
        b.iter(|| ac.longest_match_per_position(&text))
    });
    g.bench_function("chunked_ac", |b| {
        b.iter(|| chunked_ac::longest_match_per_position_chunked(&ac, &text, m, 1 << 15))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
