//! Criterion bench for the baselines themselves: AC construction and scan,
//! KMP — so the comparator numbers in other benches have context.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdm_baselines::{AhoCorasick, Kmp};
use pdm_textgen::{strings, Alphabet};

fn bench(c: &mut Criterion) {
    let mut r = strings::rng(1);
    let mut text = strings::random_text(&mut r, Alphabet::Bytes, 1 << 18);
    let pats = strings::excerpt_dictionary(&mut r, &text, 128, 4, 64);
    strings::plant_occurrences(&mut r, &mut text, &pats, 128);

    let mut g = c.benchmark_group("aho_corasick");
    g.sample_size(10);
    g.bench_function("build_128_patterns", |b| b.iter(|| AhoCorasick::new(&pats)));
    let ac = AhoCorasick::new(&pats);
    g.throughput(Throughput::Elements(text.len() as u64));
    g.bench_function("find_all_256k", |b| b.iter(|| ac.find_all(&text)));
    g.bench_function("longest_per_position_256k", |b| {
        b.iter(|| ac.longest_match_per_position(&text))
    });
    g.finish();

    let mut g = c.benchmark_group("kmp");
    g.sample_size(10);
    let pat = &pats[0];
    let kmp = Kmp::new(pat);
    g.throughput(Throughput::Elements(text.len() as u64));
    g.bench_function("find_all_256k", |b| b.iter(|| kmp.find_all(&text)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
