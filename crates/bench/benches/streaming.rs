//! Streaming vs batch throughput (MB/s) at 1, 2 and max threads.
//!
//! Three shapes over the same text and dictionary:
//!
//! * `batch/<t>` — one whole-text `StaticMatcher::find_all` call;
//! * `stream/<t>` — a single [`pdm_stream::StreamMatcher`] fed 64 KiB
//!   chunks (the `pdm match --stream` path), same thread count inside
//!   each chunk's match call;
//! * `service/<t>` — a [`pdm_stream::ShardedService`] with `t` worker
//!   shards, `t` concurrent sessions each streaming the text with
//!   sequential per-chunk matching (parallelism *across* sessions —
//!   throughput is counted over all sessions' bytes).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdm_core::static1d::StaticMatcher;
use pdm_pram::Ctx;
use pdm_stream::{ServiceConfig, ShardedService, StreamMatcher};
use pdm_textgen::{strings, Alphabet};

const CHUNK: usize = 64 << 10;

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut v = vec![1];
    if max >= 2 {
        v.push(2);
    }
    if max > 2 {
        v.push(max);
    }
    v
}

fn bench(c: &mut Criterion) {
    let n = 1 << 20;
    let m = 64usize;
    let mut r = strings::rng(42);
    let mut text = strings::random_text(&mut r, Alphabet::Bytes, n);
    let pats = strings::excerpt_dictionary(&mut r, &text, 64, m / 2, m);
    strings::plant_occurrences(&mut r, &mut text, &pats, 512);

    let bctx = Ctx::seq();
    let dict = Arc::new(StaticMatcher::build(&bctx, &pats).unwrap());

    let mut g = c.benchmark_group("streaming");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(n as u64));

    for t in thread_counts() {
        let ctx = Ctx::with_threads(t);
        g.bench_with_input(BenchmarkId::new("batch", t), &t, |b, _| {
            b.iter(|| dict.find_all(&ctx, &text))
        });
        g.bench_with_input(BenchmarkId::new("stream", t), &t, |b, _| {
            b.iter(|| {
                let mut sm = StreamMatcher::new(Arc::clone(&dict));
                let mut out = Vec::new();
                for chunk in text.chunks(CHUNK) {
                    sm.push_into(&ctx, chunk, &mut out);
                }
                out
            })
        });
    }
    g.finish();

    // Service throughput: t sessions on t shards, each streaming the full
    // text — total bytes = t * n.
    let mut g = c.benchmark_group("streaming_service");
    g.sample_size(10);
    for t in thread_counts() {
        g.throughput(Throughput::Bytes((t * n) as u64));
        g.bench_with_input(BenchmarkId::new("sessions", t), &t, |b, &t| {
            b.iter(|| {
                let svc = ShardedService::start(
                    Arc::clone(&dict),
                    ServiceConfig {
                        workers: t,
                        queue_cap: 16,
                        ..Default::default()
                    },
                );
                let total: u64 = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..t)
                        .map(|_| {
                            let session = svc.open();
                            let text = &text;
                            s.spawn(move || {
                                for chunk in text.chunks(CHUNK) {
                                    session.push(chunk.to_vec()).unwrap();
                                }
                                let (_matches, summary) = session.close();
                                summary.expect("summary").consumed
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).sum()
                });
                assert_eq!(total, (t * n) as u64);
                svc.shutdown();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
