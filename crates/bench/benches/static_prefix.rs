//! Criterion bench for E1: static prefix-matching (§4.1, Theorem 1) over a
//! sweep of longest-pattern lengths `m`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdm_core::static1d::StaticMatcher;
use pdm_pram::Ctx;
use pdm_textgen::{strings, Alphabet};

fn bench(c: &mut Criterion) {
    let n = 1 << 16;
    let mut g = c.benchmark_group("static_prefix_match");
    g.sample_size(10);
    for &m in &[16usize, 256, 4096] {
        let mut r = strings::rng(m as u64);
        let mut text = strings::random_text(&mut r, Alphabet::Bytes, n);
        let pats = strings::excerpt_dictionary(&mut r, &text, 16, m / 2, m);
        strings::plant_occurrences(&mut r, &mut text, &pats, 64);
        let bctx = Ctx::seq();
        let matcher = StaticMatcher::build(&bctx, &pats).unwrap();
        let ctx = Ctx::par();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("m", m), &m, |b, _| {
            b.iter(|| matcher.prefix_match(&ctx, &text));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("static_dict_build");
    g.sample_size(10);
    for &m in &[64usize, 1024] {
        let mut r = strings::rng(m as u64);
        let pats = strings::random_dictionary(&mut r, Alphabet::Bytes, 64, m / 2, m);
        let m_total: usize = pats.iter().map(Vec::len).sum();
        g.throughput(Throughput::Elements(m_total as u64));
        g.bench_with_input(BenchmarkId::new("m", m), &m, |b, _| {
            b.iter(|| StaticMatcher::build(&Ctx::seq(), &pats).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
