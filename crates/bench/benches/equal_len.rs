//! Criterion bench for E5: Theorem 11 equal-length matching across pattern
//! lengths — wall-clock must stay near-flat in `m` (the optimality story).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdm_baselines::AhoCorasick;
use pdm_core::equal_len::EqualLenMatcher;
use pdm_pram::Ctx;
use pdm_textgen::{strings, Alphabet};

fn bench(c: &mut Criterion) {
    let n = 1 << 17;
    let mut g = c.benchmark_group("equal_len_match");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    for &m in &[16usize, 128, 1024] {
        let mut r = strings::rng(m as u64);
        let mut text = strings::random_text(&mut r, Alphabet::Bytes, n);
        let pats = strings::excerpt_dictionary(&mut r, &text, 8, m, m);
        strings::plant_occurrences(&mut r, &mut text, &pats, 64);
        let matcher = EqualLenMatcher::new(&pats).unwrap();
        let ctx = Ctx::par();
        g.bench_with_input(BenchmarkId::new("thm11/m", m), &m, |b, _| {
            b.iter(|| matcher.match_text(&ctx, &text))
        });
        let ac = AhoCorasick::new(&pats);
        g.bench_with_input(BenchmarkId::new("ac/m", m), &m, |b, _| {
            b.iter(|| ac.longest_match_per_position(&text))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
