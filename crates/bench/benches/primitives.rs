//! Criterion bench for the PRAM primitive substrates: scans, radix sort,
//! concurrent name table — the constant factors everything else sits on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdm_naming::{NamePool, NameTable};
use pdm_pram::Ctx;
use pdm_primitives::radix::radix_sort_by_key;
use pdm_primitives::scan::{prefix_sums, scan_inclusive};

fn bench(c: &mut Criterion) {
    let n = 1 << 20;
    let data: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 1009).collect();

    let mut g = c.benchmark_group("scan");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    let seq = Ctx::seq();
    let par = Ctx::par();
    g.bench_function("inclusive_sum_seq", |b| {
        b.iter(|| scan_inclusive(&seq, &data, 0u64, |a, x| a + x))
    });
    g.bench_function("inclusive_sum_par", |b| {
        b.iter(|| scan_inclusive(&par, &data, 0u64, |a, x| a + x))
    });
    g.bench_function("prefix_sums_par", |b| b.iter(|| prefix_sums(&par, &data)));
    g.finish();

    let recs: Vec<(u64, u32)> = data
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u32))
        .collect();
    let mut g = c.benchmark_group("radix_sort");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("seq", |b| b.iter(|| radix_sort_by_key(&seq, &recs)));
    g.bench_function("par", |b| b.iter(|| radix_sort_by_key(&par, &recs)));
    g.bench_function("std_sort_baseline", |b| {
        b.iter(|| {
            let mut v = recs.clone();
            v.sort_by_key(|r| r.0);
            v
        })
    });
    g.finish();

    let mut g = c.benchmark_group("name_table");
    g.sample_size(10);
    let keys: Vec<(u32, u32)> = (0..1u32 << 18).map(|i| (i % 65536, i / 7)).collect();
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("insert_lookup", |b| {
        b.iter(|| {
            let pool = NamePool::dictionary();
            let t = NameTable::with_capacity(keys.len(), pool);
            let mut acc = 0u64;
            for &(a, bb) in &keys {
                acc = acc.wrapping_add(t.name(a, bb) as u64);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
