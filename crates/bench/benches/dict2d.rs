//! Criterion bench for E6: 2-D dictionary matching versus Baker–Bird.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdm_baselines::{baker_bird, naive};
use pdm_core::dict2d::{Dict2DMatcher, Grid2};
use pdm_pram::Ctx;
use pdm_textgen::{grid, strings, Alphabet};

fn bench(c: &mut Criterion) {
    let side = 256usize;
    let mut g = c.benchmark_group("dict2d_match");
    g.sample_size(10);
    g.throughput(Throughput::Elements((side * side) as u64));
    for &m in &[8usize, 32] {
        let mut r = strings::rng(m as u64);
        let mut tg = grid::random_grid(&mut r, Alphabet::Letters, side, side);
        let pats = grid::excerpt_square_dictionary(&mut r, &tg, 8, m / 2, m);
        grid::plant_squares(&mut r, &mut tg, &pats, 16);
        let g_pats: Vec<Grid2> = pats
            .iter()
            .map(|p| Grid2::new(p.rows, p.cols, p.data.clone()))
            .collect();
        let text = Grid2::new(tg.rows, tg.cols, tg.data.clone());
        let bctx = Ctx::seq();
        let matcher = Dict2DMatcher::build(&bctx, &g_pats).unwrap();
        let ctx = Ctx::par();
        g.bench_with_input(BenchmarkId::new("dyadic/m", m), &m, |b, _| {
            b.iter(|| matcher.match_grid(&ctx, &text))
        });
        let n_pats: Vec<naive::Grid> = pats
            .iter()
            .map(|p| naive::Grid::new(p.rows, p.cols, p.data.clone()))
            .collect();
        let n_text = naive::Grid::new(tg.rows, tg.cols, tg.data.clone());
        g.bench_with_input(BenchmarkId::new("baker_bird/m", m), &m, |b, _| {
            b.iter(|| baker_bird::largest_square_pattern_per_cell(&n_pats, &n_text))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
