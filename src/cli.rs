//! Command-line interface logic (the `pdm` binary is a thin wrapper).
//!
//! ```text
//! pdm build  --dict words.txt --out index.pdm
//! pdm match  --dict words.txt --text corpus.bin [--threads N] [--all]
//! pdm match  --index index.pdm --text corpus.bin
//! pdm prefix --dict words.txt --text corpus.bin
//! pdm stats  --dict words.txt
//! pdm gen    --out corpus.bin --bytes 1048576 [--seed 7] [--markov]
//! pdm serve  --dict words.txt --port 7700 [--workers N] [--queue-cap Q]
//! pdm serve  --dict-log dict.pdml --port 7700          # live updates on
//! pdm match  --dict words.txt --text corpus.bin --stream [--chunk-bytes K]
//! pdm dict   add|remove|commit|info|compact (--log F | --addr H:P) [...]
//! ```
//!
//! Dictionary files hold one pattern per line (UTF-8 lines, matched as raw
//! bytes); text files are matched as raw bytes. Everything here is plain
//! `std` — no CLI dependencies.

use crate::prelude::*;
use std::io::Write;

/// Where the dictionary comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DictSource {
    Patterns(String),
    Index(String),
    /// A versioned dictionary log (`match --dict-log`): the committed
    /// epoch is served, cold-loaded from its `.snap` sidecar when fresh.
    Log(String),
}

/// Where a `pdm dict` subcommand applies: a local log file, or a running
/// `pdm serve --dict-log` server over the admin frames in
/// `pdm_stream::proto`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DictTarget {
    Log(String),
    Addr(String),
}

/// A `pdm dict` operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DictOp {
    Add {
        pattern: String,
    },
    Remove {
        pattern: String,
    },
    Commit,
    Info,
    /// Local-only: rewrite the log to live patterns + staged tail and emit
    /// a `<log>.snap` snapshot.
    Compact,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Match {
        /// A dictionary file (`--dict`) or a prebuilt index (`--index`).
        dict: DictSource,
        text: String,
        threads: Option<usize>,
        all: bool,
        /// `--stream`: run through [`pdm_stream::StreamMatcher`] in
        /// `chunk_bytes`-sized chunks instead of one whole-text call.
        stream: bool,
        chunk_bytes: usize,
    },
    Serve {
        /// Static dictionary (`--dict`/`--index`), or with `--dict-log`
        /// the optional `--dict` seed for an empty log.
        dict: Option<DictSource>,
        /// `--dict-log`: serve from a versioned dictionary log and accept
        /// live `DICT_*` updates (see [`pdm_stream::admin`]).
        dict_log: Option<String>,
        port: u16,
        workers: Option<usize>,
        queue_cap: usize,
        /// Per-connection idle read timeout in ms; 0 disables it.
        read_timeout_ms: u64,
        /// Live-connection cap (arrivals beyond it are load-shed); 0 = unlimited.
        max_conns: usize,
        /// How long shutdown waits for in-flight sessions before force-closing.
        drain_deadline_ms: u64,
        /// `--serve-mode reactor|threaded`; `None` = the library default
        /// (reactor, overridable via `PDM_SERVE_MODE`).
        serve_mode: Option<pdm_stream::ServeMode>,
        /// `--reactors N`: reactor threads; 0 = auto (one per core, ≤ 8).
        reactors: usize,
    },
    Build {
        dict: String,
        out: String,
    },
    Prefix {
        dict: String,
        text: String,
        threads: Option<usize>,
    },
    Stats {
        /// Local: a dictionary file (`--dict`) or a prebuilt index
        /// (`--index`) — build/load it and print table statistics.
        dict: Option<DictSource>,
        /// Remote: `--addr host:port` — ask a running `pdm serve` for its
        /// global counters over a `TAG_STATS` frame.
        addr: Option<String>,
    },
    Dict {
        op: DictOp,
        target: DictTarget,
    },
    Gen {
        out: String,
        bytes: usize,
        seed: u64,
        markov: bool,
        /// `--corpus genome|log`: indexing-workload corpus shapes from
        /// `pdm_textgen::corpus` instead of the matching-workload texts.
        corpus: Option<String>,
        /// `--patterns-out F [--pattern-count K]`: also sample a query
        /// batch from the generated corpus, one pattern per line.
        patterns_out: Option<String>,
        pattern_count: usize,
    },
    /// Build a suffix-array sidecar for a corpus (`pdm-index`).
    Index {
        text: String,
        out: String,
        threads: Option<usize>,
    },
    /// Inspect any sidecar file: magic, version, CRC status, sections.
    SnapInspect {
        file: String,
    },
    /// Deep-validate (and optionally repair) on-disk stores: a dictionary
    /// log + its `.snap` sidecar (`--log`) and/or a `PDMX` corpus-index
    /// sidecar (`--index`).
    Fsck {
        log: Option<String>,
        index: Option<String>,
        repair: bool,
    },
    /// Answer a pattern batch from a prebuilt sidecar.
    Query {
        index: String,
        patterns: String,
        threads: Option<usize>,
        /// `--locate`: print every occurrence, not just per-pattern counts.
        locate: bool,
        /// `--no-merge`: disable interval merging (for measurement).
        no_merge: bool,
        /// `--verify`: cross-check counts against the Aho–Corasick baseline.
        verify: bool,
    },
    Help,
}

/// Errors surfaced to the user with exit code 2.
#[derive(Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

pub const USAGE: &str = "\
pdm — parallel dictionary matching (Muthukrishnan & Palem, SPAA'93)

USAGE:
  pdm build  --dict <file> --out <index>
  pdm match  --dict <file> --text <file> [--threads N] [--all]
  pdm match  --index <file> --text <file> [--threads N] [--all]
  pdm match  --dict <file> --text <file> --stream [--chunk-bytes K]
  pdm match  --dict-log <file> --text <file> [--threads N]
  pdm prefix --dict <file> --text <file> [--threads N]
  pdm serve  --dict <file> --port <n> [--workers N] [--queue-cap Q]
             [--read-timeout-ms T] [--max-conns C] [--drain-deadline-ms D]
             [--serve-mode reactor|threaded] [--reactors N]
  pdm serve  --dict-log <file> --port <n> [--dict <seed>] [...]
  pdm stats  --dict <file> | --index <file> | --addr <host:port>
  pdm dict   add    --pattern <text> (--log <file> | --addr <host:port>)
  pdm dict   remove --pattern <text> (--log <file> | --addr <host:port>)
  pdm dict   commit (--log <file> | --addr <host:port>)
  pdm dict   info   (--log <file> | --addr <host:port>)
  pdm dict   compact --log <file>
  pdm gen    --out <file> --bytes <n> [--seed S] [--markov | --corpus genome|log]
             [--patterns-out <file> [--pattern-count K]]
  pdm snap   inspect --file <sidecar>
  pdm fsck   (--log <file> | --index <file.pdmx>) [--repair]
  pdm index  --text <corpus> --out <file.pdmx> [--threads N]
  pdm query  --index <file.pdmx> --patterns <file> [--threads N]
             [--locate] [--no-merge] [--verify]
  pdm help

Dictionary files: one pattern per line. Texts are matched byte-wise.
`match` prints one line per occurrence: <offset>\\t<pattern-index>\\t<pattern>.
`--all` lists every pattern per position, not just the longest.
`--stream` feeds the text chunk-at-a-time through the streaming matcher
(implies `--all`; default chunk 65536 bytes), matching what `serve` does
per connection.
`build` serializes the preprocessed index for repeated `match --index` runs.
`serve` answers the length-prefixed TCP protocol in pdm_stream::proto;
one connection = one stream session over a shared dictionary.
`--read-timeout-ms` closes idle connections (0 = never, the default);
`--max-conns` load-sheds arrivals beyond the cap with a busy error frame
(0 = unlimited); `--drain-deadline-ms` bounds the graceful drain on
shutdown (default 5000).
`--serve-mode` picks the serving tier: `reactor` (the default) runs a
fixed pool of epoll event loops owning all connections — tens of
thousands of concurrent sessions on a handful of threads — while
`threaded` spawns two OS threads per connection (the original tier, kept
for comparison and as a fallback). `--reactors N` sizes the reactor pool
(0 = one per core, capped at 8). `pdm stats --addr host:port` asks a
running server for its live global counters (sessions, frames decoded,
reactor wakeups, partial writes, timer expirations, …) over the same
frame protocol.
`index` builds the offline suffix-array sidecar (pdm-index, PDMX format,
CRC-verified on load); `query` answers a batch of patterns (one per line)
against it without touching the corpus again — per-pattern counts by
default, `--locate` for every occurrence as <offset>\\t<pattern>\\t<text>.
`gen --corpus genome|log` emits the indexing-workload corpus shapes;
`--patterns-out` samples a prefix-sharing query batch from the corpus.
`serve --dict-log` enables live dictionary updates: the dictionary lives
in an append-only log, `dict add/remove` stage changes, and `dict commit`
publishes them as a new epoch that running sessions adopt at their next
chunk boundary without dropping connections. With an empty log, `--dict`
seeds it from a pattern file. `dict ... --addr` administers a running
server; `--log` edits the log file directly (server stopped). `compact`
rewrites the log to its live patterns and emits a `<log>.snap` snapshot
holding the *built* matcher; `serve --dict-log` and `match --dict-log`
boot from a fresh snapshot in O(file size) with no rebuild, and fall back
to rebuilding when it is missing, legacy, corrupt, or stale.
`snap inspect` prints any sidecar's magic, version, CRC status, and
sections (`.snap` snapshots, `.pdmx` corpus indexes, `.pdml` dict logs).
`fsck` deep-validates a store — log header and every record CRC, a replay
simulation catching CRC-valid-but-inconsistent op streams, sidecar
freshness against the log, stray temp files — and reports which boot path
the store would take. `--repair` performs the safe repairs: truncate a
torn log tail, quarantine a corrupt sidecar to `*.corrupt`, sweep `*.tmp`
leftovers. Exit 0 = healthy/bootable, 1 = findings (or unbootable), 2 =
fatal. Stale sidecars are informational: boot falls back to a rebuild.
";

/// Parse argv (excluding the program name).
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let mut it = args.iter();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    // `dict` takes an action word before its flags: `pdm dict add --…`.
    let mut dict_action = None;
    if sub == "dict" {
        dict_action = Some(it.next().cloned().ok_or_else(|| {
            UsageError("dict requires an action: add|remove|commit|info|compact".into())
        })?);
    }
    // `snap` likewise: `pdm snap inspect --file …`.
    if sub == "snap" {
        let action = it
            .next()
            .cloned()
            .ok_or_else(|| UsageError("snap requires an action: inspect".into()))?;
        if action != "inspect" {
            return Err(UsageError(format!(
                "unknown snap action: {action} (expected inspect)"
            )));
        }
    }
    let mut dict = None;
    let mut index = None;
    let mut text = None;
    let mut out = None;
    let mut bytes = None;
    let mut seed = 0u64;
    let mut threads = None;
    let mut all = false;
    let mut markov = false;
    let mut stream = false;
    let mut chunk_bytes = 64 * 1024;
    let mut port = None;
    let mut workers = None;
    let mut queue_cap = 16usize;
    let mut read_timeout_ms = 0u64;
    let mut max_conns = 0usize;
    let mut drain_deadline_ms = 5000u64;
    let mut serve_mode = None;
    let mut reactors = 0usize;
    let mut dict_log = None;
    let mut log = None;
    let mut addr = None;
    let mut pattern = None;
    let mut patterns = None;
    let mut corpus = None;
    let mut patterns_out = None;
    let mut pattern_count = 1000usize;
    let mut locate = false;
    let mut no_merge = false;
    let mut verify = false;
    let mut file = None;
    let mut repair = false;
    while let Some(a) = it.next() {
        let mut need = |name: &str| -> Result<String, UsageError> {
            it.next()
                .cloned()
                .ok_or_else(|| UsageError(format!("{name} requires a value")))
        };
        match a.as_str() {
            "--dict" => dict = Some(need("--dict")?),
            "--index" => index = Some(need("--index")?),
            "--text" => text = Some(need("--text")?),
            "--out" => out = Some(need("--out")?),
            "--bytes" => {
                bytes = Some(
                    need("--bytes")?
                        .parse()
                        .map_err(|_| UsageError("--bytes wants an integer".into()))?,
                )
            }
            "--seed" => {
                seed = need("--seed")?
                    .parse()
                    .map_err(|_| UsageError("--seed wants an integer".into()))?
            }
            "--threads" => {
                threads = Some(
                    need("--threads")?
                        .parse()
                        .map_err(|_| UsageError("--threads wants an integer".into()))?,
                )
            }
            "--all" => all = true,
            "--markov" => markov = true,
            "--stream" => stream = true,
            "--chunk-bytes" => {
                chunk_bytes = need("--chunk-bytes")?
                    .parse()
                    .map_err(|_| UsageError("--chunk-bytes wants an integer".into()))?;
                if chunk_bytes == 0 {
                    return Err(UsageError("--chunk-bytes must be positive".into()));
                }
            }
            "--port" => {
                port = Some(
                    need("--port")?
                        .parse()
                        .map_err(|_| UsageError("--port wants a port number".into()))?,
                )
            }
            "--workers" => {
                workers = Some(
                    need("--workers")?
                        .parse()
                        .map_err(|_| UsageError("--workers wants an integer".into()))?,
                )
            }
            "--queue-cap" => {
                queue_cap = need("--queue-cap")?
                    .parse()
                    .map_err(|_| UsageError("--queue-cap wants an integer".into()))?;
                if queue_cap == 0 {
                    return Err(UsageError("--queue-cap must be positive".into()));
                }
            }
            "--read-timeout-ms" => {
                read_timeout_ms = need("--read-timeout-ms")?
                    .parse()
                    .map_err(|_| UsageError("--read-timeout-ms wants an integer".into()))?
            }
            "--max-conns" => {
                max_conns = need("--max-conns")?
                    .parse()
                    .map_err(|_| UsageError("--max-conns wants an integer".into()))?
            }
            "--drain-deadline-ms" => {
                drain_deadline_ms = need("--drain-deadline-ms")?
                    .parse()
                    .map_err(|_| UsageError("--drain-deadline-ms wants an integer".into()))?
            }
            "--serve-mode" => {
                serve_mode = Some(match need("--serve-mode")?.as_str() {
                    "reactor" => pdm_stream::ServeMode::Reactor,
                    "threaded" => pdm_stream::ServeMode::Threaded,
                    other => {
                        return Err(UsageError(format!(
                            "--serve-mode must be reactor or threaded, not {other}"
                        )))
                    }
                })
            }
            "--reactors" => {
                reactors = need("--reactors")?
                    .parse()
                    .map_err(|_| UsageError("--reactors wants an integer".into()))?
            }
            "--dict-log" => dict_log = Some(need("--dict-log")?),
            "--log" => log = Some(need("--log")?),
            "--addr" => addr = Some(need("--addr")?),
            "--pattern" => pattern = Some(need("--pattern")?),
            "--patterns" => patterns = Some(need("--patterns")?),
            "--corpus" => corpus = Some(need("--corpus")?),
            "--patterns-out" => patterns_out = Some(need("--patterns-out")?),
            "--pattern-count" => {
                pattern_count = need("--pattern-count")?
                    .parse()
                    .map_err(|_| UsageError("--pattern-count wants an integer".into()))?;
                if pattern_count == 0 {
                    return Err(UsageError("--pattern-count must be positive".into()));
                }
            }
            "--locate" => locate = true,
            "--no-merge" => no_merge = true,
            "--verify" => verify = true,
            "--file" => file = Some(need("--file")?),
            "--repair" => repair = true,
            other => return Err(UsageError(format!("unknown flag: {other}"))),
        }
    }
    let want = |o: Option<String>, name: &str| -> Result<String, UsageError> {
        o.ok_or_else(|| UsageError(format!("{sub} requires {name}")))
    };
    let source = |dict: Option<String>, index: Option<String>| match (dict, index) {
        (Some(d), None) => Ok(DictSource::Patterns(d)),
        (None, Some(i)) => Ok(DictSource::Index(i)),
        (Some(_), Some(_)) => Err(UsageError("--dict and --index are exclusive".into())),
        (None, None) => Err(UsageError(format!("{sub} requires --dict or --index"))),
    };
    match sub {
        "match" => {
            let src = if let Some(log) = dict_log {
                if dict.is_some() || index.is_some() {
                    return Err(UsageError(
                        "--dict-log is exclusive with --dict/--index".into(),
                    ));
                }
                if stream {
                    return Err(UsageError(
                        "--stream needs a static dictionary (--dict or --index)".into(),
                    ));
                }
                DictSource::Log(log)
            } else {
                source(dict, index)?
            };
            Ok(Command::Match {
                dict: src,
                text: want(text, "--text")?,
                threads,
                all,
                stream,
                chunk_bytes,
            })
        }
        "serve" => {
            let dict = if dict.is_some() || index.is_some() {
                Some(source(dict, index)?)
            } else {
                None
            };
            if dict.is_none() && dict_log.is_none() {
                return Err(UsageError(
                    "serve requires --dict, --index, or --dict-log".into(),
                ));
            }
            if dict_log.is_some() && matches!(dict, Some(DictSource::Index(_))) {
                return Err(UsageError(
                    "--dict-log seeds from --dict patterns; --index cannot seed a log".into(),
                ));
            }
            Ok(Command::Serve {
                dict,
                dict_log,
                port: port.ok_or_else(|| UsageError("serve requires --port".into()))?,
                workers,
                queue_cap,
                read_timeout_ms,
                max_conns,
                drain_deadline_ms,
                serve_mode,
                reactors,
            })
        }
        "build" => Ok(Command::Build {
            dict: want(dict, "--dict")?,
            out: want(out, "--out")?,
        }),
        "prefix" => Ok(Command::Prefix {
            dict: want(dict, "--dict")?,
            text: want(text, "--text")?,
            threads,
        }),
        "stats" => {
            if let Some(a) = addr {
                if dict.is_some() || index.is_some() {
                    return Err(UsageError("--addr is exclusive with --dict/--index".into()));
                }
                Ok(Command::Stats {
                    dict: None,
                    addr: Some(a),
                })
            } else {
                Ok(Command::Stats {
                    dict: Some(source(dict, index)?),
                    addr: None,
                })
            }
        }
        "dict" => {
            let target = match (log, addr) {
                (Some(l), None) => DictTarget::Log(l),
                (None, Some(a)) => DictTarget::Addr(a),
                (Some(_), Some(_)) => {
                    return Err(UsageError("--log and --addr are exclusive".into()))
                }
                (None, None) => return Err(UsageError("dict requires --log or --addr".into())),
            };
            let action = dict_action.expect("set for the dict subcommand");
            let op = match action.as_str() {
                "add" => DictOp::Add {
                    pattern: want(pattern, "--pattern")?,
                },
                "remove" => DictOp::Remove {
                    pattern: want(pattern, "--pattern")?,
                },
                "commit" => DictOp::Commit,
                "info" => DictOp::Info,
                "compact" => {
                    if matches!(target, DictTarget::Addr(_)) {
                        return Err(UsageError(
                            "dict compact is local-only: use --log, not --addr".into(),
                        ));
                    }
                    DictOp::Compact
                }
                other => {
                    return Err(UsageError(format!(
                        "unknown dict action: {other} (expected add|remove|commit|info|compact)"
                    )))
                }
            };
            Ok(Command::Dict { op, target })
        }
        "gen" => {
            if let Some(c) = &corpus {
                if c != "genome" && c != "log" {
                    return Err(UsageError(format!(
                        "--corpus must be genome or log, not {c}"
                    )));
                }
                if markov {
                    return Err(UsageError("--markov and --corpus are exclusive".into()));
                }
            }
            if patterns_out.is_some() && corpus.is_none() {
                return Err(UsageError(
                    "--patterns-out requires --corpus genome|log".into(),
                ));
            }
            Ok(Command::Gen {
                out: want(out, "--out")?,
                bytes: bytes.ok_or_else(|| UsageError("gen requires --bytes".into()))?,
                seed,
                markov,
                corpus,
                patterns_out,
                pattern_count,
            })
        }
        "index" => Ok(Command::Index {
            text: want(text, "--text")?,
            out: want(out, "--out")?,
            threads,
        }),
        "snap" => Ok(Command::SnapInspect {
            file: want(file, "--file")?,
        }),
        "fsck" => {
            if log.is_none() && index.is_none() {
                return Err(UsageError("fsck requires --log and/or --index".into()));
            }
            Ok(Command::Fsck { log, index, repair })
        }
        "query" => Ok(Command::Query {
            index: want(index, "--index")?,
            patterns: want(patterns, "--patterns")?,
            threads,
            locate,
            no_merge,
            verify,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(UsageError(format!("unknown command: {other}"))),
    }
}

fn ctx_for(threads: Option<usize>) -> Ctx {
    match threads {
        Some(t) => Ctx::with_threads(t),
        None => Ctx::par(),
    }
}

/// Typed CLI-boundary error: every failure a subcommand can hit keeps its
/// underlying error (I/O, build, corrupt sidecar, store) instead of being
/// flattened to a `String` at the call site. `run` renders it once, as
/// `error: {e}`, exit code 2.
#[derive(Debug)]
pub enum CliError {
    /// File I/O against a user-supplied path.
    Io {
        path: String,
        source: std::io::Error,
    },
    /// A dictionary file with no usable patterns.
    NoPatterns(String),
    /// Matcher construction failed.
    Build(BuildError),
    /// A serialized `PDM1`/`PDMT` matcher index failed to load.
    MatcherLoad(pdm_core::static1d::serial::LoadError),
    /// Dictionary log/store failure.
    Store {
        path: String,
        source: pdm_dict::StoreError,
    },
    /// A `.snap` snapshot sidecar failed to load or validate.
    Snap(pdm_dict::SnapError),
    /// Any sidecar failed the shared codec framing (magic/version/CRC).
    Corrupt(pdm_primitives::codec::CodecError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "{path}: {source}"),
            Self::NoPatterns(path) => write!(f, "{path}: no patterns"),
            Self::Build(e) => write!(f, "{e}"),
            Self::MatcherLoad(e) => write!(f, "{e}"),
            Self::Store { path, source } => write!(f, "{path}: {source}"),
            Self::Snap(e) => write!(f, "{e}"),
            Self::Corrupt(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::NoPatterns(_) => None,
            Self::Build(e) => Some(e),
            Self::MatcherLoad(e) => Some(e),
            Self::Store { source, .. } => Some(source),
            Self::Snap(e) => Some(e),
            Self::Corrupt(e) => Some(e),
        }
    }
}

impl From<BuildError> for CliError {
    fn from(e: BuildError) -> Self {
        Self::Build(e)
    }
}

impl From<pdm_dict::SnapError> for CliError {
    fn from(e: pdm_dict::SnapError) -> Self {
        Self::Snap(e)
    }
}

impl From<pdm_primitives::codec::CodecError> for CliError {
    fn from(e: pdm_primitives::codec::CodecError) -> Self {
        Self::Corrupt(e)
    }
}

fn io_err(path: &str) -> impl Fn(std::io::Error) -> CliError + '_ {
    move |source| CliError::Io {
        path: path.to_string(),
        source,
    }
}

fn store_err(path: &str) -> impl Fn(pdm_dict::StoreError) -> CliError + '_ {
    move |source| CliError::Store {
        path: path.to_string(),
        source,
    }
}

/// Load a dictionary file: one pattern per line, empty lines skipped.
pub fn load_dictionary(path: &str) -> Result<Vec<Vec<Sym>>, CliError> {
    let data = std::fs::read_to_string(path).map_err(io_err(path))?;
    let pats: Vec<Vec<Sym>> = data
        .lines()
        .filter(|l| !l.is_empty())
        .map(to_symbols)
        .collect();
    if pats.is_empty() {
        return Err(CliError::NoPatterns(path.to_string()));
    }
    Ok(pats)
}

/// Load a text file as raw bytes.
pub fn load_text(path: &str) -> Result<Vec<Sym>, CliError> {
    let data = std::fs::read(path).map_err(io_err(path))?;
    Ok(data.into_iter().map(Sym::from).collect())
}

/// A matcher plus, when built from `--dict`, the pattern texts for display.
type ResolvedMatcher = (StaticMatcher, Option<Vec<Vec<Sym>>>);

fn resolve_matcher(dict: &DictSource, ctx: &Ctx) -> Result<ResolvedMatcher, CliError> {
    match dict {
        DictSource::Patterns(path) => {
            let pats = load_dictionary(path)?;
            let m = StaticMatcher::build(ctx, &pats)?;
            Ok((m, Some(pats)))
        }
        DictSource::Index(path) => {
            let data = std::fs::read(path).map_err(io_err(path))?;
            let m = StaticMatcher::from_bytes(&data).map_err(CliError::MatcherLoad)?;
            Ok((m, None))
        }
        DictSource::Log(path) => Err(CliError::Store {
            path: path.clone(),
            source: pdm_dict::StoreError::Replay(
                "--dict-log is only valid for match and serve".into(),
            ),
        }),
    }
}

/// Execute a command, writing human output to `w`. Returns the exit code.
pub fn run(cmd: Command, w: &mut impl Write) -> std::io::Result<i32> {
    match cmd {
        Command::Help => {
            write!(w, "{USAGE}")?;
            Ok(0)
        }
        Command::Stats {
            dict: None,
            addr: Some(addr),
        } => run_stats_addr(&addr, w),
        Command::Stats { dict, addr: _ } => {
            let dict = dict.expect("parse guarantees a source without --addr");
            let ctx = Ctx::par();
            let t0 = std::time::Instant::now();
            let (m, _) = match resolve_matcher(&dict, &ctx) {
                Ok(mp) => mp,
                Err(e) => {
                    writeln!(w, "error: {e}")?;
                    return Ok(2);
                }
            };
            let s = m.stats();
            writeln!(w, "patterns:        {}", s.n_patterns)?;
            writeln!(w, "dictionary size: {} symbols (M)", s.dictionary_size)?;
            writeln!(w, "longest pattern: {} (m)", s.max_pattern_len)?;
            writeln!(w, "levels:          {} (⌈log₂ m⌉)", s.levels)?;
            writeln!(w, "names allocated: {}", s.names_allocated)?;
            writeln!(
                w,
                "table entries:   {} (sym {}, pair {}, fold {}, ext {})",
                s.table_entry_count(),
                s.sym_entries,
                s.pair_entries,
                s.fold_entries,
                s.ext_entries
            )?;
            writeln!(
                w,
                "match telemetry: {} calls, {} alloc events, {} table lookups",
                s.match_calls, s.alloc_events, s.table_lookups
            )?;
            writeln!(w, "prefilter:       {}", s.prefilter.describe())?;
            let pc = s.prefilter_counters;
            writeln!(
                w,
                "prefilter work:  {} scans, {} candidates, {} windows, {} syms verified, {} dense skips",
                pc.scans, pc.candidates, pc.windows, pc.verified_syms, pc.bailouts
            )?;
            let c = ctx.cost.snapshot();
            let verb = match dict {
                DictSource::Patterns(_) => "build",
                DictSource::Index(_) | DictSource::Log(_) => "load",
            };
            writeln!(
                w,
                "{verb}: {:.1} ms wall, {} PRAM rounds, {} ops",
                t0.elapsed().as_secs_f64() * 1e3,
                c.rounds,
                c.work
            )?;
            Ok(0)
        }
        Command::Build { dict, out } => {
            let pats = match load_dictionary(&dict) {
                Ok(p) => p,
                Err(e) => {
                    writeln!(w, "error: {e}")?;
                    return Ok(2);
                }
            };
            let ctx = Ctx::par();
            let m = match StaticMatcher::build(&ctx, &pats) {
                Ok(m) => m,
                Err(e) => {
                    writeln!(w, "error: {e}")?;
                    return Ok(2);
                }
            };
            let bytes = m.to_bytes();
            // Atomic + durable: a crash mid-write must not tear a
            // previously good index at the same path.
            match pdm_primitives::vfs::atomic_write(std::path::Path::new(&out), &bytes) {
                Ok(()) => {
                    writeln!(
                        w,
                        "indexed {} patterns ({} symbols) into {out}: {} bytes",
                        m.pattern_count(),
                        m.symbol_count(),
                        bytes.len()
                    )?;
                    Ok(0)
                }
                Err(e) => {
                    writeln!(w, "error: {out}: {e}")?;
                    Ok(2)
                }
            }
        }
        Command::Match {
            dict,
            text,
            threads,
            all,
            stream,
            chunk_bytes,
        } => {
            let txt = match load_text(&text) {
                Ok(t) => t,
                Err(e) => {
                    writeln!(w, "error: {e}")?;
                    return Ok(2);
                }
            };
            let ctx = ctx_for(threads);
            if let DictSource::Log(log) = &dict {
                return run_match_log(log, &txt, &ctx, w);
            }
            let (m, pats) = match resolve_matcher(&dict, &ctx) {
                Ok(mp) => mp,
                Err(e) => {
                    writeln!(w, "error: {e}")?;
                    return Ok(2);
                }
            };
            let show = |w: &mut dyn Write, i: usize, p: PatId| -> std::io::Result<()> {
                match &pats {
                    Some(pats) => {
                        let pat = &pats[p as usize];
                        let txt: String = pat
                            .iter()
                            .map(|&c| char::from(c as u8))
                            .map(|c| {
                                if c.is_ascii_graphic() || c == ' ' {
                                    c
                                } else {
                                    '.'
                                }
                            })
                            .collect();
                        writeln!(w, "{i}\t{p}\t{txt}")
                    }
                    None => writeln!(w, "{i}\t{p}"),
                }
            };
            let mut count = 0usize;
            if stream {
                // Same chunk-at-a-time path a `serve` session runs;
                // reports all occurrences with absolute offsets.
                let mut sm = pdm_stream::StreamMatcher::new(std::sync::Arc::new(m));
                for c in txt.chunks(chunk_bytes) {
                    for occ in sm.push(&ctx, c) {
                        show(w, occ.start as usize, occ.pat)?;
                        count += 1;
                    }
                }
                writeln!(
                    w,
                    "# {count} occurrences in {} bytes ({} chunks of ≤{} bytes)",
                    txt.len(),
                    txt.len().div_ceil(chunk_bytes).max(1),
                    chunk_bytes
                )?;
                return Ok(0);
            }
            if all {
                for (i, p) in m.find_all(&ctx, &txt) {
                    show(w, i, p)?;
                    count += 1;
                }
            } else {
                let out = m.match_text(&ctx, &txt);
                for (i, p) in out.occurrences() {
                    show(w, i, p)?;
                    count += 1;
                }
            }
            writeln!(w, "# {count} occurrences in {} bytes", txt.len())?;
            Ok(0)
        }
        Command::Prefix {
            dict,
            text,
            threads,
        } => {
            let (pats, txt) = match (load_dictionary(&dict), load_text(&text)) {
                (Ok(p), Ok(t)) => (p, t),
                (Err(e), _) | (_, Err(e)) => {
                    writeln!(w, "error: {e}")?;
                    return Ok(2);
                }
            };
            let ctx = ctx_for(threads);
            let m = match StaticMatcher::build(&ctx, &pats) {
                Ok(m) => m,
                Err(e) => {
                    writeln!(w, "error: {e}")?;
                    return Ok(2);
                }
            };
            let pm = m.prefix_match(&ctx, &txt);
            // Histogram of longest-prefix lengths: the useful summary.
            let maxl = pm.len.iter().copied().max().unwrap_or(0) as usize;
            let mut hist = vec![0usize; maxl + 1];
            for &l in &pm.len {
                hist[l as usize] += 1;
            }
            writeln!(
                w,
                "longest-prefix-length histogram ({} positions):",
                txt.len()
            )?;
            for (l, &c) in hist.iter().enumerate() {
                if c > 0 {
                    writeln!(w, "{l}\t{c}")?;
                }
            }
            Ok(0)
        }
        Command::Gen {
            out,
            bytes,
            seed,
            markov,
            corpus,
            patterns_out,
            pattern_count,
        } => {
            use pdm_textgen::{corpus as cg, markov as mk, strings, Alphabet};
            let mut r = strings::rng(seed);
            let syms: Vec<u8> = match corpus.as_deref() {
                // Genome symbols 0..4 are written as ACGT so the corpus
                // file is readable and the byte values are the symbols.
                Some("genome") => cg::genome_default(&mut r, bytes)
                    .into_iter()
                    .map(|c| b"ACGT"[c as usize])
                    .collect(),
                Some(_) => cg::log_lines(&mut r, bytes, 8)
                    .into_iter()
                    .map(|c| c as u8)
                    .collect(),
                None if markov => mk::english_like(&mut r, bytes)
                    .into_iter()
                    .map(|c| c as u8 + b'a')
                    .collect(),
                None => strings::random_text(&mut r, Alphabet::Bytes, bytes)
                    .into_iter()
                    .map(|c| c as u8)
                    .collect(),
            };
            if let Err(e) = std::fs::write(&out, &syms) {
                writeln!(w, "error: {out}: {e}")?;
                return Ok(2);
            }
            writeln!(w, "wrote {} bytes to {out}", syms.len())?;
            if let Some(ppath) = patterns_out {
                // Sample a prefix-sharing query batch from the corpus we
                // just wrote. Pattern files are line-based, so patterns
                // containing a newline byte are dropped and resampled.
                let corpus_syms: Vec<u32> = syms.iter().map(|&b| u32::from(b)).collect();
                let max_len = 24.min(corpus_syms.len());
                let min_len = 4.min(max_len);
                let mut pats: Vec<Vec<u32>> = Vec::with_capacity(pattern_count);
                while pats.len() < pattern_count {
                    let want = pattern_count - pats.len();
                    let batch =
                        cg::query_patterns(&mut r, &corpus_syms, want, min_len, max_len, 4, 50);
                    pats.extend(batch.into_iter().filter(|p| !p.contains(&u32::from(b'\n'))));
                }
                let mut text = String::new();
                for p in &pats {
                    for &c in p {
                        text.push(char::from(c as u8));
                    }
                    text.push('\n');
                }
                if let Err(e) = std::fs::write(&ppath, text.as_bytes()) {
                    writeln!(w, "error: {ppath}: {e}")?;
                    return Ok(2);
                }
                writeln!(w, "wrote {} patterns to {ppath}", pats.len())?;
            }
            Ok(0)
        }
        Command::Index { text, out, threads } => {
            let txt = match load_text(&text) {
                Ok(t) => t,
                Err(e) => {
                    writeln!(w, "error: {e}")?;
                    return Ok(2);
                }
            };
            let ctx = ctx_for(threads);
            let t0 = std::time::Instant::now();
            let idx = pdm_index::CorpusIndex::build(&ctx, txt);
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;
            let bytes = idx.to_bytes();
            if let Err(e) = pdm_primitives::vfs::atomic_write(std::path::Path::new(&out), &bytes) {
                writeln!(w, "error: {out}: {e}")?;
                return Ok(2);
            }
            let c = ctx.cost.snapshot();
            writeln!(
                w,
                "indexed {} symbols into {out}: {} bytes, {build_ms:.1} ms build, {} PRAM rounds, {} ops",
                idx.len(),
                bytes.len(),
                c.rounds,
                c.work
            )?;
            Ok(0)
        }
        Command::Query {
            index,
            patterns,
            threads,
            locate,
            no_merge,
            verify,
        } => {
            let idx = match pdm_index::CorpusIndex::read_from(std::path::Path::new(&index)) {
                Ok(i) => i,
                Err(e) => {
                    writeln!(w, "error: {index}: {e}")?;
                    return Ok(2);
                }
            };
            let pats = match load_dictionary(&patterns) {
                Ok(p) => p,
                Err(e) => {
                    writeln!(w, "error: {e}")?;
                    return Ok(2);
                }
            };
            let ctx = ctx_for(threads);
            let opts = pdm_index::BatchOptions {
                merge: !no_merge,
                mode: if locate {
                    pdm_index::QueryMode::Locate
                } else {
                    pdm_index::QueryMode::Count
                },
            };
            let t0 = std::time::Instant::now();
            let hits = idx.query_batch(&ctx, &pats, &opts);
            let query_ms = t0.elapsed().as_secs_f64() * 1e3;
            let show_pat = |p: &[Sym]| -> String {
                p.iter()
                    .map(|&c| char::from(c as u8))
                    .map(|c| {
                        if c.is_ascii_graphic() || c == ' ' {
                            c
                        } else {
                            '.'
                        }
                    })
                    .collect()
            };
            let mut total = 0usize;
            for (i, h) in hits.iter().enumerate() {
                total += h.count;
                if locate {
                    for &pos in &h.positions {
                        writeln!(w, "{pos}\t{i}\t{}", show_pat(&pats[i]))?;
                    }
                } else {
                    writeln!(w, "{i}\t{}\t{}", h.count, show_pat(&pats[i]))?;
                }
            }
            writeln!(
                w,
                "# {total} occurrences for {} patterns in {} symbols, {query_ms:.2} ms",
                pats.len(),
                idx.len()
            )?;
            if verify {
                // Cross-check every count against the streaming baseline:
                // an Aho–Corasick pass over the full corpus.
                let mut uniq: Vec<Vec<u32>> = pats.clone();
                uniq.sort_unstable();
                uniq.dedup();
                let ac = pdm_baselines::AhoCorasick::new(&uniq);
                let maxlen = uniq.iter().map(Vec::len).max().unwrap_or(1);
                let occs =
                    pdm_baselines::chunked_ac::find_all_chunked(&ac, &idx.text, maxlen, 1 << 16);
                let mut ac_counts = vec![0usize; uniq.len()];
                for o in &occs {
                    ac_counts[o.pat] += 1;
                }
                let mut bad = 0usize;
                for (i, p) in pats.iter().enumerate() {
                    let u = uniq.binary_search(p).expect("uniq contains every pattern");
                    if hits[i].count != ac_counts[u] {
                        bad += 1;
                        writeln!(
                            w,
                            "verify MISMATCH pattern {i} ({}): index {} vs AC {}",
                            show_pat(p),
                            hits[i].count,
                            ac_counts[u]
                        )?;
                    }
                }
                if bad > 0 {
                    writeln!(w, "verify: {bad}/{} patterns disagree", pats.len())?;
                    return Ok(1);
                }
                writeln!(
                    w,
                    "verify: OK ({} patterns agree with Aho–Corasick)",
                    pats.len()
                )?;
            }
            Ok(0)
        }
        Command::Serve {
            dict,
            dict_log,
            port,
            workers,
            queue_cap,
            read_timeout_ms,
            max_conns,
            drain_deadline_ms,
            serve_mode,
            reactors,
        } => {
            let ctx = Ctx::par();
            let mut service = pdm_stream::ServiceConfig::default();
            if let Some(n) = workers {
                service.workers = n.max(1);
            }
            service.queue_cap = queue_cap;
            let cfg = pdm_stream::ServerConfig {
                service,
                read_timeout: (read_timeout_ms > 0)
                    .then(|| std::time::Duration::from_millis(read_timeout_ms)),
                max_conns,
                drain_deadline: std::time::Duration::from_millis(drain_deadline_ms),
                serve_mode: serve_mode.unwrap_or_default(),
                reactors,
                ..Default::default()
            };
            let mode = match cfg.serve_mode {
                pdm_stream::ServeMode::Reactor => "reactor",
                pdm_stream::ServeMode::Threaded => "threaded",
            };
            let (server, banner) = if let Some(log) = dict_log {
                let store = match open_seeded_store(&log, dict.as_ref(), &ctx, w)? {
                    Ok(s) => s,
                    Err(e) => {
                        writeln!(w, "error: {e}")?;
                        return Ok(2);
                    }
                };
                let banner = format!(
                    "serving {} patterns (epoch {}, live updates via {log}) on",
                    store.pattern_count(),
                    store.epoch()
                );
                match pdm_stream::Server::bind_versioned(("0.0.0.0", port), store, cfg) {
                    Ok(s) => {
                        // Boot happened inside bind: say whether the first
                        // epoch came from the `.snap` sidecar or a rebuild.
                        if let Some(admin) = s.dict_admin() {
                            match admin.boot_fallback() {
                                None => writeln!(
                                    w,
                                    "dictionary boot: cold-loaded from snapshot (no rebuild)"
                                )?,
                                Some(reason) => writeln!(w, "dictionary boot: rebuilt ({reason})")?,
                            }
                        }
                        (s, banner)
                    }
                    Err(e) => {
                        writeln!(w, "error: bind port {port}: {e}")?;
                        return Ok(2);
                    }
                }
            } else {
                let src = dict.expect("parse guarantees a source without --dict-log");
                let (m, _) = match resolve_matcher(&src, &ctx) {
                    Ok(mp) => mp,
                    Err(e) => {
                        writeln!(w, "error: {e}")?;
                        return Ok(2);
                    }
                };
                let banner = format!("serving {} patterns on", m.pattern_count());
                match pdm_stream::Server::bind(("0.0.0.0", port), std::sync::Arc::new(m), cfg) {
                    Ok(s) => (s, banner),
                    Err(e) => {
                        writeln!(w, "error: bind port {port}: {e}")?;
                        return Ok(2);
                    }
                }
            };
            writeln!(
                w,
                "{banner} {} ({mode} mode; protocol: pdm_stream::proto; ^C to stop)",
                server.local_addr()
            )?;
            w.flush()?;
            server.join();
            Ok(0)
        }
        Command::Dict { op, target } => run_dict(op, target, w),
        Command::SnapInspect { file } => run_snap_inspect(&file, w),
        Command::Fsck { log, index, repair } => run_fsck(log, index, repair, w),
    }
}

/// `pdm fsck`: deep validation and repair (see USAGE for semantics).
fn run_fsck(
    log: Option<String>,
    index: Option<String>,
    repair: bool,
    w: &mut impl Write,
) -> std::io::Result<i32> {
    let mut exit = 0i32;
    if let Some(path) = log {
        let report = match pdm_dict::fsck_store(std::path::Path::new(&path), repair) {
            Ok(r) => r,
            Err(e) => {
                writeln!(w, "error: {path}: {e}")?;
                return Ok(2);
            }
        };
        for f in &report.findings {
            writeln!(w, "{f}")?;
        }
        writeln!(
            w,
            "{path}: {}, boot path: {}",
            if report.bootable {
                "bootable"
            } else {
                "NOT bootable"
            },
            report.boot_path
        )?;
        if report.unrepaired() > 0 || !report.bootable {
            exit = 1;
        }
    }
    if let Some(path) = index {
        match run_fsck_index(&path, repair, w)? {
            0 => {}
            code => exit = exit.max(code),
        }
    }
    Ok(exit)
}

/// The `--index` half of fsck: verify a `PDMX` sidecar end to end (full
/// decode, whole-file CRC), quarantine it on `--repair` if it fails, and
/// sweep a stray `.tmp` from an interrupted atomic write.
fn run_fsck_index(path: &str, repair: bool, w: &mut impl Write) -> std::io::Result<i32> {
    use pdm_primitives::vfs;
    let p = std::path::Path::new(path);
    let mut exit = 0i32;
    match vfs::read(p) {
        Err(e) => {
            writeln!(w, "error: {path}: {e}")?;
            return Ok(2);
        }
        Ok(bytes) => match pdm_index::CorpusIndex::from_bytes(&bytes) {
            Ok(idx) => {
                writeln!(
                    w,
                    "{path}: ok ({} symbols, {} bytes, crc OK)",
                    idx.len(),
                    bytes.len()
                )?;
            }
            Err(e) => {
                if repair {
                    let mut os = p.as_os_str().to_owned();
                    os.push(".corrupt");
                    let dest = std::path::PathBuf::from(os);
                    vfs::rename(p, &dest)?;
                    vfs::sync_parent_dir(p)?;
                    writeln!(
                        w,
                        "error: {path}: sidecar unreadable ({e}) [repaired: quarantined to {}]",
                        dest.display()
                    )?;
                } else {
                    writeln!(
                        w,
                        "error: {path}: sidecar unreadable ({e}) [repairable: quarantine to *.corrupt]"
                    )?;
                    exit = 1;
                }
            }
        },
    }
    let tmp = vfs::tmp_path(p);
    if tmp.exists() {
        if repair {
            vfs::remove_file(&tmp)?;
            writeln!(
                w,
                "warn: {}: stray temp file [repaired: removed]",
                tmp.display()
            )?;
        } else {
            writeln!(
                w,
                "warn: {}: stray temp file from an interrupted atomic write [repairable: remove]",
                tmp.display()
            )?;
            exit = 1;
        }
    }
    Ok(exit)
}

/// `pdm match --dict-log`: serve the committed epoch of a versioned log,
/// cold-loading its `.snap` sidecar when fresh (one `#` line reports which
/// path ran). Reports *all* occurrences per position, like `--all`.
fn run_match_log(log: &str, txt: &[Sym], ctx: &Ctx, w: &mut impl Write) -> std::io::Result<i32> {
    let boot = match pdm_dict::DictStore::open(std::path::Path::new(log))
        .and_then(|mut store| store.boot_snapshot(ctx))
        .map_err(store_err(log))
    {
        Ok(b) => b,
        Err(e) => {
            writeln!(w, "error: {e}")?;
            return Ok(2);
        }
    };
    match &boot.fallback {
        None => writeln!(
            w,
            "# dictionary epoch {}: cold-loaded from {}",
            boot.snapshot.epoch(),
            pdm_dict::store::snap_path(std::path::Path::new(log)).display()
        )?,
        Some(reason) => writeln!(
            w,
            "# dictionary epoch {}: rebuilt ({reason})",
            boot.snapshot.epoch()
        )?,
    }
    let pats = boot.snapshot.patterns().map(<[Vec<Sym>]>::to_vec);
    let mut count = 0usize;
    for (i, p) in boot.snapshot.find_all(ctx, txt) {
        match &pats {
            Some(pats) => {
                let shown: String = pats[p as usize]
                    .iter()
                    .map(|&c| char::from(c as u8))
                    .map(|c| {
                        if c.is_ascii_graphic() || c == ' ' {
                            c
                        } else {
                            '.'
                        }
                    })
                    .collect();
                writeln!(w, "{i}\t{p}\t{shown}")?;
            }
            None => writeln!(w, "{i}\t{p}")?,
        }
        count += 1;
    }
    writeln!(w, "# {count} occurrences in {} bytes", txt.len())?;
    Ok(0)
}

/// `pdm snap inspect`: report magic, version, CRC status, and sections of
/// any sidecar file, without building a matcher or replaying a log.
fn run_snap_inspect(file: &str, w: &mut impl Write) -> std::io::Result<i32> {
    use pdm_primitives::codec;
    let bytes = match std::fs::read(file).map_err(io_err(file)) {
        Ok(b) => b,
        Err(e) => {
            writeln!(w, "error: {e}")?;
            return Ok(2);
        }
    };
    writeln!(w, "file: {file} ({} bytes)", bytes.len())?;
    if bytes.len() < codec::HEADER_LEN {
        writeln!(w, "error: too short for any sidecar header")?;
        return Ok(2);
    }
    match &bytes[..4] {
        b"PDMS" => match pdm_dict::inspect(&bytes) {
            Ok(info) => {
                let kind = if info.version >= 2 {
                    "built-matcher snapshot"
                } else {
                    "identity snapshot (legacy; load rebuilds)"
                };
                writeln!(w, "format: PDMS v{} — {kind}", info.version)?;
                writeln!(w, "epoch: {}", info.epoch)?;
                writeln!(w, "patterns: {}", info.patterns)?;
                for &(id, len) in &info.sections {
                    let name = match id {
                        pdm_dict::snapshot::SEC_META => "META",
                        pdm_dict::snapshot::SEC_PATTERNS => "PATTERNS",
                        pdm_dict::snapshot::SEC_TABLES => "TABLES",
                        pdm_dict::snapshot::SEC_CHAINS => "CHAINS",
                        _ => "?",
                    };
                    writeln!(w, "section {name} (id {id}): {len} bytes")?;
                }
                let crc = if info.version >= 2 {
                    "OK"
                } else {
                    "none (v1 has no checksum)"
                };
                writeln!(w, "crc: {crc}")?;
                Ok(0)
            }
            Err(e) => {
                writeln!(w, "error: {e}")?;
                Ok(2)
            }
        },
        b"PDMX" => {
            let version = codec::read_header(&bytes, *b"PDMX").expect("magic just checked");
            writeln!(w, "format: PDMX v{version} — corpus index")?;
            match codec::verify_crc(&bytes) {
                Ok(_) => {
                    writeln!(w, "crc: OK")?;
                    Ok(0)
                }
                Err(e) => {
                    writeln!(w, "crc: FAILED ({e})")?;
                    Ok(2)
                }
            }
        }
        b"PDML" => {
            let version =
                codec::read_header(&bytes, pdm_dict::log::LOG_MAGIC).expect("magic just checked");
            writeln!(w, "format: PDML v{version} — dictionary log")?;
            // Per-record CRCs: walk the framing the same way replay does.
            let mut at = codec::HEADER_LEN;
            let mut records = 0usize;
            let mut tail = "clean";
            while at < bytes.len() {
                match codec::read_record(&bytes[at..], 64 << 20) {
                    codec::RecordRead::Ok(rec) => {
                        at += rec.consumed;
                        records += 1;
                    }
                    codec::RecordRead::Torn => {
                        tail = "torn (incomplete final record)";
                        break;
                    }
                    codec::RecordRead::Bad(_) => {
                        tail = "corrupt (record checksum failed)";
                        break;
                    }
                }
            }
            writeln!(w, "records: {records}")?;
            writeln!(w, "tail: {tail}")?;
            Ok(if tail == "clean" { 0 } else { 2 })
        }
        other => {
            writeln!(
                w,
                "error: unknown magic {:?} (expected PDMS, PDMX, or PDML)",
                String::from_utf8_lossy(other)
            )?;
            Ok(2)
        }
    }
}

/// Open (or create) a dictionary log; with an empty log and a `--dict`
/// pattern file, seed it with those patterns as epoch 1.
///
/// The outer `io::Result` is writer failures; the inner is the typed
/// CLI-boundary error rendered by the caller.
fn open_seeded_store(
    log: &str,
    seed: Option<&DictSource>,
    ctx: &Ctx,
    w: &mut impl Write,
) -> std::io::Result<Result<pdm_dict::DictStore, CliError>> {
    use pdm_dict::DictStore;
    let mut store = match DictStore::open(std::path::Path::new(log)).map_err(store_err(log)) {
        Ok(s) => s,
        Err(e) => return Ok(Err(e)),
    };
    if let Some(DictSource::Patterns(path)) = seed {
        if store.pattern_count() == 0 && store.staged_len() == 0 {
            let pats = match load_dictionary(path) {
                Ok(p) => p,
                Err(e) => return Ok(Err(e)),
            };
            for p in &pats {
                if let Err(e) = store.stage_add(p).map_err(store_err(path)) {
                    return Ok(Err(e));
                }
            }
            if let Err(e) = store.commit(ctx).map_err(store_err(path)) {
                return Ok(Err(e));
            }
            writeln!(w, "seeded {log} with {} patterns from {path}", pats.len())?;
        } else {
            writeln!(w, "{log} already has patterns; ignoring --dict seed {path}")?;
        }
    }
    Ok(Ok(store))
}

/// `pdm stats --addr`: fetch a running server's global counters over a
/// `TAG_STATS` frame and print them, one per line, with the reactor-tier
/// efficiency ratio (ready events per `epoll_wait` wakeup) derived.
fn run_stats_addr(addr: &str, w: &mut impl Write) -> std::io::Result<i32> {
    use pdm_stream::proto::{decode_stats, read_frame, write_frame, TAG_STATS, TAG_STATS_RESP};
    let attempt = || -> std::io::Result<pdm_stream::GlobalSnapshot> {
        let mut sock = std::net::TcpStream::connect(addr)?;
        sock.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
        write_frame(&mut sock, TAG_STATS, &[])?;
        loop {
            match read_frame(&mut sock)? {
                Some((TAG_STATS_RESP, p)) => {
                    return decode_stats(&p).ok_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "malformed stats reply",
                        )
                    })
                }
                // Session frames (hello-ack, acks) may interleave.
                Some(_) => continue,
                None => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed before replying",
                    ))
                }
            }
        }
    };
    match attempt() {
        Ok(snap) => {
            for (name, value) in snap.named_fields() {
                writeln!(w, "{name:<24} {value}")?;
            }
            if snap.reactor_wakeups > 0 {
                writeln!(
                    w,
                    "{:<24} {:.2}",
                    "ready_events_per_wakeup",
                    snap.reactor_events as f64 / snap.reactor_wakeups as f64
                )?;
            }
            Ok(0)
        }
        Err(e) => {
            writeln!(w, "error: {addr}: {e}")?;
            Ok(2)
        }
    }
}

/// Execute a `pdm dict` operation against a local log or a live server.
fn run_dict(op: DictOp, target: DictTarget, w: &mut impl Write) -> std::io::Result<i32> {
    use pdm_dict::{DictStore, SnapshotPath};
    use pdm_stream::proto::{
        decode_dict_info, read_frame, write_frame, TAG_DICT_ADD, TAG_DICT_COMMIT, TAG_DICT_ERR,
        TAG_DICT_INFO, TAG_DICT_INFO_RESP, TAG_DICT_OK, TAG_DICT_REMOVE,
    };
    match target {
        DictTarget::Log(path) => {
            let mut store = match DictStore::open(std::path::Path::new(&path)) {
                Ok(s) => s,
                Err(e) => {
                    writeln!(w, "error: {path}: {e}")?;
                    return Ok(2);
                }
            };
            let result = match &op {
                DictOp::Add { pattern } => store
                    .stage_add(&to_symbols(pattern))
                    .map(|()| format!("staged add \"{pattern}\"")),
                DictOp::Remove { pattern } => store
                    .stage_remove(&to_symbols(pattern))
                    .map(|()| format!("staged remove \"{pattern}\"")),
                DictOp::Commit => store.commit(&Ctx::par()).map(|out| {
                    format!(
                        "committed epoch {} ({} patterns, {} rebuild)",
                        out.epoch,
                        out.snapshot.pattern_count(),
                        match out.path {
                            SnapshotPath::Incremental => "incremental",
                            SnapshotPath::FullRebuild => "full",
                            SnapshotPath::ColdLoaded => "cold-loaded",
                        }
                    )
                }),
                DictOp::Info => Ok(format!(
                    "epoch {}: {} patterns ({} symbols), {} staged ops",
                    store.epoch(),
                    store.pattern_count(),
                    store.symbol_count(),
                    store.staged_len()
                )),
                DictOp::Compact => store.compact(&Ctx::par()).map(|r| {
                    format!(
                        "compacted {path}: {} live patterns, {} staged ops{}",
                        r.live,
                        r.staged,
                        r.snapshot_file
                            .map(|p| format!(", snapshot {}", p.display()))
                            .unwrap_or_default()
                    )
                }),
            };
            match result {
                Ok(msg) => {
                    writeln!(w, "{msg}")?;
                    Ok(0)
                }
                Err(e) => {
                    writeln!(w, "error: {e}")?;
                    Ok(2)
                }
            }
        }
        DictTarget::Addr(addr) => {
            let (tag, payload) = match &op {
                DictOp::Add { pattern } => (TAG_DICT_ADD, pattern.clone().into_bytes()),
                DictOp::Remove { pattern } => (TAG_DICT_REMOVE, pattern.clone().into_bytes()),
                DictOp::Commit => (TAG_DICT_COMMIT, Vec::new()),
                DictOp::Info => (TAG_DICT_INFO, Vec::new()),
                DictOp::Compact => unreachable!("parse rejects compact --addr"),
            };
            let attempt = || -> std::io::Result<(u8, Vec<u8>)> {
                let mut sock = std::net::TcpStream::connect(&addr)?;
                sock.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
                write_frame(&mut sock, tag, &payload)?;
                // The server interleaves session frames (hello-ack, acks)
                // with admin replies; skip to the reply.
                loop {
                    match read_frame(&mut sock)? {
                        Some((t @ (TAG_DICT_OK | TAG_DICT_ERR | TAG_DICT_INFO_RESP), p)) => {
                            return Ok((t, p))
                        }
                        Some(_) => continue,
                        None => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                "server closed before replying",
                            ))
                        }
                    }
                }
            };
            match attempt() {
                Ok((TAG_DICT_OK, p)) => {
                    let epoch = u64::from_le_bytes(p.try_into().unwrap_or_default());
                    writeln!(w, "ok (epoch {epoch})")?;
                    Ok(0)
                }
                Ok((TAG_DICT_INFO_RESP, p)) => match decode_dict_info(&p) {
                    Some(i) => {
                        writeln!(
                            w,
                            "epoch {}: {} patterns, {} staged ops, longest pattern {}",
                            i.epoch, i.patterns, i.staged, i.max_pattern_len
                        )?;
                        Ok(0)
                    }
                    None => {
                        writeln!(w, "error: malformed dict-info reply")?;
                        Ok(2)
                    }
                },
                Ok((_, p)) => {
                    writeln!(w, "error: {}", String::from_utf8_lossy(&p))?;
                    Ok(2)
                }
                Err(e) => {
                    writeln!(w, "error: {addr}: {e}")?;
                    Ok(2)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_match() {
        let c = parse(&args(&["match", "--dict", "d", "--text", "t", "--all"])).unwrap();
        assert_eq!(
            c,
            Command::Match {
                dict: DictSource::Patterns("d".into()),
                text: "t".into(),
                threads: None,
                all: true,
                stream: false,
                chunk_bytes: 64 * 1024,
            }
        );
    }

    #[test]
    fn parses_gen_with_defaults() {
        let c = parse(&args(&["gen", "--out", "f", "--bytes", "100"])).unwrap();
        assert_eq!(
            c,
            Command::Gen {
                out: "f".into(),
                bytes: 100,
                seed: 0,
                markov: false,
                corpus: None,
                patterns_out: None,
                pattern_count: 1000,
            }
        );
    }

    #[test]
    fn parses_gen_corpus_and_pattern_flags() {
        let c = parse(&args(&[
            "gen",
            "--out",
            "c.bin",
            "--bytes",
            "4096",
            "--corpus",
            "genome",
            "--patterns-out",
            "p.txt",
            "--pattern-count",
            "50",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Gen {
                out: "c.bin".into(),
                bytes: 4096,
                seed: 0,
                markov: false,
                corpus: Some("genome".into()),
                patterns_out: Some("p.txt".into()),
                pattern_count: 50,
            }
        );
        assert!(parse(&args(&[
            "gen", "--out", "c", "--bytes", "1", "--corpus", "bogus"
        ]))
        .is_err());
        assert!(parse(&args(&[
            "gen", "--out", "c", "--bytes", "1", "--corpus", "log", "--markov"
        ]))
        .is_err());
        assert!(
            parse(&args(&[
                "gen",
                "--out",
                "c",
                "--bytes",
                "1",
                "--patterns-out",
                "p"
            ]))
            .is_err(),
            "--patterns-out needs --corpus"
        );
    }

    #[test]
    fn parses_index_and_query() {
        let c = parse(&args(&["index", "--text", "c.bin", "--out", "c.pdmx"])).unwrap();
        assert_eq!(
            c,
            Command::Index {
                text: "c.bin".into(),
                out: "c.pdmx".into(),
                threads: None,
            }
        );
        let c = parse(&args(&[
            "query",
            "--index",
            "c.pdmx",
            "--patterns",
            "p.txt",
            "--threads",
            "2",
            "--locate",
            "--no-merge",
            "--verify",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Query {
                index: "c.pdmx".into(),
                patterns: "p.txt".into(),
                threads: Some(2),
                locate: true,
                no_merge: true,
                verify: true,
            }
        );
        assert!(parse(&args(&["index", "--text", "c"])).is_err());
        assert!(parse(&args(&["query", "--index", "i"])).is_err());
        assert!(parse(&args(&["query", "--patterns", "p"])).is_err());
    }

    #[test]
    fn end_to_end_gen_index_query_verify() {
        let dir = std::env::temp_dir().join(format!("pdm-cli-pdmx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cpath: String = dir.join("corpus.bin").to_string_lossy().into();
        let ppath: String = dir.join("patterns.txt").to_string_lossy().into();
        let ipath: String = dir.join("corpus.pdmx").to_string_lossy().into();
        let mut out = Vec::new();
        assert_eq!(
            run(
                Command::Gen {
                    out: cpath.clone(),
                    bytes: 20_000,
                    seed: 42,
                    markov: false,
                    corpus: Some("log".into()),
                    patterns_out: Some(ppath.clone()),
                    pattern_count: 60,
                },
                &mut out,
            )
            .unwrap(),
            0
        );
        let mut out = Vec::new();
        assert_eq!(
            run(
                Command::Index {
                    text: cpath.clone(),
                    out: ipath.clone(),
                    threads: Some(2),
                },
                &mut out,
            )
            .unwrap(),
            0
        );
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("indexed 20000 symbols"), "{s}");

        // Counts must survive the disk round trip and agree with AC.
        let mut out = Vec::new();
        let code = run(
            Command::Query {
                index: ipath.clone(),
                patterns: ppath.clone(),
                threads: Some(2),
                locate: false,
                no_merge: false,
                verify: true,
            },
            &mut out,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{s}");
        assert!(s.contains("verify: OK"), "{s}");

        // Locate output lines are <offset>\t<pattern-index>\t<text>.
        let mut out = Vec::new();
        assert_eq!(
            run(
                Command::Query {
                    index: ipath.clone(),
                    patterns: ppath,
                    threads: Some(1),
                    locate: true,
                    no_merge: true,
                    verify: false,
                },
                &mut out,
            )
            .unwrap(),
            0
        );
        let s = String::from_utf8(out).unwrap();
        assert!(
            s.lines().any(|l| {
                let mut f = l.split('\t');
                matches!(
                    (f.next(), f.next(), f.next()),
                    (Some(a), Some(b), Some(_))
                        if a.parse::<usize>().is_ok() && b.parse::<usize>().is_ok()
                )
            }),
            "{s}"
        );

        // A corrupted sidecar must be rejected, not silently mis-answered.
        let mut bytes = std::fs::read(&ipath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&ipath, &bytes).unwrap();
        let mut out = Vec::new();
        let code = run(
            Command::Query {
                index: ipath,
                patterns: dir.join("patterns.txt").to_string_lossy().into(),
                threads: Some(1),
                locate: false,
                no_merge: false,
                verify: false,
            },
            &mut out,
        )
        .unwrap();
        assert_eq!(code, 2);
        assert!(String::from_utf8(out).unwrap().contains("checksum"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_fsck() {
        let c = parse(&args(&["fsck", "--log", "d.pdml", "--repair"])).unwrap();
        assert_eq!(
            c,
            Command::Fsck {
                log: Some("d.pdml".into()),
                index: None,
                repair: true,
            }
        );
        let c = parse(&args(&["fsck", "--index", "c.pdmx"])).unwrap();
        assert_eq!(
            c,
            Command::Fsck {
                log: None,
                index: Some("c.pdmx".into()),
                repair: false,
            }
        );
        assert!(parse(&args(&["fsck"])).is_err(), "needs a target");
    }

    #[test]
    fn end_to_end_fsck_detects_and_repairs() {
        let dir = std::env::temp_dir().join(format!("pdm-cli-fsck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let lpath = dir.join("dict.pdml");
        let log_s: String = lpath.to_string_lossy().into();

        // Seed a committed, compacted store through the dict subcommands.
        for op in [
            DictOp::Add {
                pattern: "he".into(),
            },
            DictOp::Add {
                pattern: "she".into(),
            },
            DictOp::Commit,
            DictOp::Compact,
        ] {
            let mut out = Vec::new();
            assert_eq!(
                run_dict(op, DictTarget::Log(log_s.clone()), &mut out).unwrap(),
                0
            );
        }

        // Healthy: exit 0, cold-load boot path reported.
        let mut out = Vec::new();
        let code = run_fsck(Some(log_s.clone()), None, false, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{s}");
        assert!(s.contains("bootable"), "{s}");
        assert!(s.contains("cold-load"), "{s}");

        // Tear the tail: fsck flags it (exit 1), --repair truncates it.
        let mut bytes = std::fs::read(&lpath).unwrap();
        bytes.extend_from_slice(&[0xAB; 5]);
        std::fs::write(&lpath, &bytes).unwrap();
        let mut out = Vec::new();
        assert_eq!(
            run_fsck(Some(log_s.clone()), None, false, &mut out).unwrap(),
            1
        );
        let mut out = Vec::new();
        assert_eq!(
            run_fsck(Some(log_s.clone()), None, true, &mut out).unwrap(),
            0
        );
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("repaired"), "{s}");
        // And the repaired store still serves matches.
        let mut out = Vec::new();
        assert_eq!(
            run_dict(DictOp::Info, DictTarget::Log(log_s.clone()), &mut out).unwrap(),
            0
        );
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("2 patterns"), "{s}");

        // PDMX half: a bit-flipped sidecar is exit 1, repair quarantines.
        let ipath = dir.join("c.pdmx");
        let idx = pdm_index::CorpusIndex::build_from_bytes(&Ctx::seq(), b"abracadabra");
        idx.write_to(&ipath).unwrap();
        let ipath_s: String = ipath.to_string_lossy().into();
        let mut out = Vec::new();
        assert_eq!(
            run_fsck(None, Some(ipath_s.clone()), false, &mut out).unwrap(),
            0
        );
        let mut bytes = std::fs::read(&ipath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&ipath, &bytes).unwrap();
        let mut out = Vec::new();
        assert_eq!(
            run_fsck(None, Some(ipath_s.clone()), false, &mut out).unwrap(),
            1
        );
        let mut out = Vec::new();
        assert_eq!(run_fsck(None, Some(ipath_s), true, &mut out).unwrap(), 0);
        assert!(!ipath.exists(), "quarantined away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_required_flag_errors() {
        assert!(parse(&args(&["match", "--dict", "d"])).is_err());
        assert!(parse(&args(&["gen", "--out", "f"])).is_err());
        assert!(parse(&args(&["bogus"])).is_err());
        assert!(parse(&args(&["match", "--nope"])).is_err());
    }

    #[test]
    fn empty_args_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn end_to_end_match_through_tempfiles() {
        let dir = std::env::temp_dir().join(format!("pdm-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dpath = dir.join("dict.txt");
        let tpath = dir.join("text.bin");
        std::fs::write(&dpath, "he\nshe\nhers\n").unwrap();
        std::fs::write(&tpath, "ushers").unwrap();
        let mut out = Vec::new();
        let code = run(
            Command::Match {
                dict: DictSource::Patterns(dpath.to_string_lossy().into()),
                text: tpath.to_string_lossy().into(),
                threads: Some(1),
                all: true,
                stream: false,
                chunk_bytes: 64 * 1024,
            },
            &mut out,
        )
        .unwrap();
        assert_eq!(code, 0);
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("1\t1\tshe"), "{s}");
        assert!(s.contains("2\t0\the"), "{s}");
        assert!(s.contains("2\t2\thers"), "{s}");
        assert!(s.contains("# 3 occurrences"), "{s}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_gen_and_stats() {
        let dir = std::env::temp_dir().join(format!("pdm-cli-gen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let gpath = dir.join("gen.bin");
        let mut out = Vec::new();
        let code = run(
            Command::Gen {
                out: gpath.to_string_lossy().into(),
                bytes: 1000,
                seed: 3,
                markov: true,
                corpus: None,
                patterns_out: None,
                pattern_count: 1000,
            },
            &mut out,
        )
        .unwrap();
        assert_eq!(code, 0);
        assert_eq!(std::fs::metadata(&gpath).unwrap().len(), 1000);

        let dpath = dir.join("dict.txt");
        std::fs::write(&dpath, "abc\nde\n").unwrap();
        let mut out = Vec::new();
        let code = run(
            Command::Stats {
                dict: Some(DictSource::Patterns(dpath.to_string_lossy().into())),
                addr: None,
            },
            &mut out,
        )
        .unwrap();
        assert_eq!(code, 0);
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("patterns:        2"), "{s}");
        assert!(s.contains("dictionary size: 5"), "{s}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_then_match_from_index() {
        let dir = std::env::temp_dir().join(format!("pdm-cli-idx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dpath = dir.join("dict.txt");
        let tpath = dir.join("text.bin");
        let ipath = dir.join("index.pdm");
        std::fs::write(&dpath, "he\nshe\nhers\n").unwrap();
        std::fs::write(&tpath, "ushers").unwrap();
        let mut out = Vec::new();
        assert_eq!(
            run(
                Command::Build {
                    dict: dpath.to_string_lossy().into(),
                    out: ipath.to_string_lossy().into(),
                },
                &mut out,
            )
            .unwrap(),
            0
        );
        let mut out = Vec::new();
        let code = run(
            Command::Match {
                dict: DictSource::Index(ipath.to_string_lossy().into()),
                text: tpath.to_string_lossy().into(),
                threads: Some(1),
                all: true,
                stream: false,
                chunk_bytes: 64 * 1024,
            },
            &mut out,
        )
        .unwrap();
        assert_eq!(code, 0);
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("# 3 occurrences"), "{s}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_serve_and_stream_flags() {
        let c = parse(&args(&[
            "serve",
            "--dict",
            "d",
            "--port",
            "7700",
            "--workers",
            "3",
            "--queue-cap",
            "8",
            "--read-timeout-ms",
            "250",
            "--max-conns",
            "32",
            "--drain-deadline-ms",
            "1500",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                dict: Some(DictSource::Patterns("d".into())),
                dict_log: None,
                port: 7700,
                workers: Some(3),
                queue_cap: 8,
                read_timeout_ms: 250,
                max_conns: 32,
                drain_deadline_ms: 1500,
                serve_mode: None,
                reactors: 0,
            }
        );
        // Lifecycle flags default off / to 5 s drain.
        let c = parse(&args(&["serve", "--dict", "d", "--port", "1"])).unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                read_timeout_ms: 0,
                max_conns: 0,
                drain_deadline_ms: 5000,
                ..
            }
        ));
        assert!(parse(&args(&["serve", "--dict", "d"])).is_err());
        assert!(parse(&args(&["serve", "--port", "1"])).is_err());

        let c = parse(&args(&[
            "match",
            "--dict",
            "d",
            "--text",
            "t",
            "--stream",
            "--chunk-bytes",
            "7",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Match {
                stream: true,
                chunk_bytes: 7,
                ..
            }
        ));
        assert!(parse(&args(&[
            "match",
            "--dict",
            "d",
            "--text",
            "t",
            "--stream",
            "--chunk-bytes",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn end_to_end_stream_match_equals_batch() {
        let dir = std::env::temp_dir().join(format!("pdm-cli-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dpath = dir.join("dict.txt");
        let tpath = dir.join("text.bin");
        std::fs::write(&dpath, "he\nshe\nhers\n").unwrap();
        std::fs::write(&tpath, "ushers and pushers").unwrap();
        // Chunk of 4 bytes splits "she" (positions 1..4 and 12..15)
        // across boundaries; output occurrences must match batch --all.
        let mut streamed = Vec::new();
        let code = run(
            Command::Match {
                dict: DictSource::Patterns(dpath.to_string_lossy().into()),
                text: tpath.to_string_lossy().into(),
                threads: Some(1),
                all: false,
                stream: true,
                chunk_bytes: 4,
            },
            &mut streamed,
        )
        .unwrap();
        assert_eq!(code, 0);
        let mut batch = Vec::new();
        run(
            Command::Match {
                dict: DictSource::Patterns(dpath.to_string_lossy().into()),
                text: tpath.to_string_lossy().into(),
                threads: Some(1),
                all: true,
                stream: false,
                chunk_bytes: 64 * 1024,
            },
            &mut batch,
        )
        .unwrap();
        let body = |v: &[u8]| -> Vec<String> {
            String::from_utf8(v.to_vec())
                .unwrap()
                .lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.to_string())
                .collect()
        };
        let mut s_lines = body(&streamed);
        let mut b_lines = body(&batch);
        s_lines.sort();
        b_lines.sort();
        assert_eq!(s_lines, b_lines);
        assert!(String::from_utf8(streamed)
            .unwrap()
            .contains("# 6 occurrences"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_index_and_dict_exclusive() {
        assert!(parse(&args(&[
            "match", "--dict", "d", "--index", "i", "--text", "t"
        ]))
        .is_err());
        assert!(parse(&args(&["match", "--text", "t"])).is_err());
        let c = parse(&args(&["match", "--index", "i", "--text", "t"])).unwrap();
        assert!(matches!(
            c,
            Command::Match {
                dict: DictSource::Index(_),
                ..
            }
        ));
        let b = parse(&args(&["build", "--dict", "d", "--out", "o"])).unwrap();
        assert_eq!(
            b,
            Command::Build {
                dict: "d".into(),
                out: "o".into()
            }
        );
    }

    #[test]
    fn parses_dict_subcommand() {
        let c = parse(&args(&[
            "dict",
            "add",
            "--pattern",
            "hers",
            "--log",
            "d.pdml",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Dict {
                op: DictOp::Add {
                    pattern: "hers".into()
                },
                target: DictTarget::Log("d.pdml".into()),
            }
        );
        let c = parse(&args(&["dict", "commit", "--addr", "127.0.0.1:7700"])).unwrap();
        assert_eq!(
            c,
            Command::Dict {
                op: DictOp::Commit,
                target: DictTarget::Addr("127.0.0.1:7700".into()),
            }
        );
        assert!(parse(&args(&["dict"])).is_err(), "action required");
        assert!(
            parse(&args(&["dict", "add", "--log", "l"])).is_err(),
            "pattern required"
        );
        assert!(parse(&args(&["dict", "info"])).is_err(), "target required");
        assert!(parse(&args(&["dict", "info", "--log", "l", "--addr", "a"])).is_err());
        assert!(
            parse(&args(&["dict", "compact", "--addr", "a"])).is_err(),
            "compact is local"
        );
        assert!(parse(&args(&["dict", "frobnicate", "--log", "l"])).is_err());
    }

    #[test]
    fn parses_serve_dict_log_and_stats_index() {
        let c = parse(&args(&["serve", "--dict-log", "d.pdml", "--port", "1"])).unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                dict: None,
                dict_log: Some(_),
                ..
            }
        ));
        let c = parse(&args(&[
            "serve",
            "--dict-log",
            "d.pdml",
            "--dict",
            "seed.txt",
            "--port",
            "1",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                dict: Some(DictSource::Patterns(_)),
                dict_log: Some(_),
                ..
            }
        ));
        assert!(
            parse(&args(&[
                "serve",
                "--dict-log",
                "d",
                "--index",
                "i",
                "--port",
                "1"
            ]))
            .is_err(),
            "an index cannot seed a log"
        );
        let c = parse(&args(&["stats", "--index", "i"])).unwrap();
        assert_eq!(
            c,
            Command::Stats {
                dict: Some(DictSource::Index("i".into())),
                addr: None,
            }
        );
        assert!(parse(&args(&["stats"])).is_err());
    }

    #[test]
    fn parses_serve_mode_reactors_and_stats_addr() {
        let c = parse(&args(&[
            "serve",
            "--dict",
            "d",
            "--port",
            "7700",
            "--serve-mode",
            "threaded",
            "--reactors",
            "4",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                serve_mode: Some(pdm_stream::ServeMode::Threaded),
                reactors: 4,
                ..
            }
        ));
        let c = parse(&args(&[
            "serve",
            "--dict",
            "d",
            "--port",
            "1",
            "--serve-mode",
            "reactor",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                serve_mode: Some(pdm_stream::ServeMode::Reactor),
                reactors: 0,
                ..
            }
        ));
        assert!(parse(&args(&[
            "serve",
            "--dict",
            "d",
            "--port",
            "1",
            "--serve-mode",
            "green"
        ]))
        .is_err());

        let c = parse(&args(&["stats", "--addr", "127.0.0.1:7700"])).unwrap();
        assert_eq!(
            c,
            Command::Stats {
                dict: None,
                addr: Some("127.0.0.1:7700".into()),
            }
        );
        assert!(
            parse(&args(&["stats", "--dict", "d", "--addr", "a"])).is_err(),
            "--addr and --dict are exclusive"
        );
    }

    /// `pdm stats --addr` against a live in-process server: the counters
    /// come back over the wire and include the reactor-tier efficiency
    /// ratio.
    #[test]
    fn stats_addr_queries_live_server() {
        use pdm_core::dict::symbolize;
        let ctx = Ctx::seq();
        let m = pdm_core::static1d::StaticMatcher::build(&ctx, &symbolize(&["he", "she"])).unwrap();
        let server = pdm_stream::Server::bind(
            ("127.0.0.1", 0),
            std::sync::Arc::new(m),
            pdm_stream::ServerConfig {
                serve_mode: pdm_stream::ServeMode::Reactor,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut out = Vec::new();
        assert_eq!(run_stats_addr(&addr, &mut out).unwrap(), 0);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("sessions_opened"), "{text}");
        assert!(text.contains("reactor_wakeups"), "{text}");
        assert!(text.contains("frames_decoded"), "{text}");
        server.shutdown();

        // Dead address: a readable error and exit code 2, not a panic.
        let mut out = Vec::new();
        assert_eq!(run_stats_addr(&addr, &mut out).unwrap(), 2);
        assert!(String::from_utf8(out).unwrap().starts_with("error:"));
    }

    #[test]
    fn stats_from_prebuilt_index() {
        let dir = std::env::temp_dir().join(format!("pdm-cli-sidx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dpath = dir.join("dict.txt");
        let ipath = dir.join("index.pdm");
        std::fs::write(&dpath, "he\nshe\nhers\n").unwrap();
        let mut out = Vec::new();
        assert_eq!(
            run(
                Command::Build {
                    dict: dpath.to_string_lossy().into(),
                    out: ipath.to_string_lossy().into(),
                },
                &mut out,
            )
            .unwrap(),
            0
        );
        let mut out = Vec::new();
        let code = run(
            Command::Stats {
                dict: Some(DictSource::Index(ipath.to_string_lossy().into())),
                addr: None,
            },
            &mut out,
        )
        .unwrap();
        assert_eq!(code, 0);
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("patterns:        3"), "{s}");
        assert!(s.contains("load:"), "{s}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dict_log_lifecycle_end_to_end() {
        let dir = std::env::temp_dir().join(format!("pdm-cli-dict-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log: String = dir.join("dict.pdml").to_string_lossy().into();
        let run_op = |op: DictOp| -> (i32, String) {
            let mut out = Vec::new();
            let code = run(
                Command::Dict {
                    op,
                    target: DictTarget::Log(log.clone()),
                },
                &mut out,
            )
            .unwrap();
            (code, String::from_utf8(out).unwrap())
        };
        for p in ["he", "she"] {
            let (code, s) = run_op(DictOp::Add { pattern: p.into() });
            assert_eq!(code, 0, "{s}");
        }
        let (code, s) = run_op(DictOp::Commit);
        assert_eq!(code, 0, "{s}");
        assert!(s.contains("committed epoch 1 (2 patterns"), "{s}");
        let (code, s) = run_op(DictOp::Remove {
            pattern: "he".into(),
        });
        assert_eq!(code, 0, "{s}");
        let (code, s) = run_op(DictOp::Info);
        assert_eq!(code, 0);
        assert!(s.contains("epoch 1: 2 patterns"), "{s}");
        assert!(s.contains("1 staged ops"), "{s}");
        let (code, s) = run_op(DictOp::Commit);
        assert_eq!(code, 0, "{s}");
        assert!(s.contains("committed epoch 2 (1 patterns"), "{s}");
        // Double-remove is a user error, surfaced as exit 2.
        let (code, s) = run_op(DictOp::Remove {
            pattern: "he".into(),
        });
        assert_eq!(code, 2);
        assert!(s.starts_with("error:"), "{s}");
        let (code, s) = run_op(DictOp::Compact);
        assert_eq!(code, 0, "{s}");
        assert!(s.contains("1 live patterns"), "{s}");
        assert!(
            std::path::Path::new(&format!("{log}.snap")).exists() || s.contains("snapshot"),
            "compact emits a snapshot: {s}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_match_dict_log_and_snap_inspect() {
        let c = parse(&args(&["match", "--dict-log", "d.pdml", "--text", "t"])).unwrap();
        assert_eq!(
            c,
            Command::Match {
                dict: DictSource::Log("d.pdml".into()),
                text: "t".into(),
                threads: None,
                all: false,
                stream: false,
                chunk_bytes: 64 * 1024,
            }
        );
        assert!(
            parse(&args(&[
                "match",
                "--dict-log",
                "l",
                "--dict",
                "d",
                "--text",
                "t"
            ]))
            .is_err(),
            "--dict-log excludes --dict"
        );
        assert!(
            parse(&args(&[
                "match",
                "--dict-log",
                "l",
                "--text",
                "t",
                "--stream"
            ]))
            .is_err(),
            "--stream needs a static dictionary"
        );
        let c = parse(&args(&["snap", "inspect", "--file", "d.pdml.snap"])).unwrap();
        assert_eq!(
            c,
            Command::SnapInspect {
                file: "d.pdml.snap".into()
            }
        );
        assert!(parse(&args(&["snap"])).is_err(), "action required");
        assert!(parse(&args(&["snap", "bogus", "--file", "f"])).is_err());
        assert!(parse(&args(&["snap", "inspect"])).is_err(), "file required");
    }

    #[test]
    fn match_dict_log_cold_loads_and_snap_inspect_reports() {
        let dir = std::env::temp_dir().join(format!("pdm-cli-coldboot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log: String = dir.join("dict.pdml").to_string_lossy().into();
        let tpath = dir.join("text.bin");
        std::fs::write(&tpath, "ushers").unwrap();
        let run_op = |op: DictOp| -> (i32, String) {
            let mut out = Vec::new();
            let code = run(
                Command::Dict {
                    op,
                    target: DictTarget::Log(log.clone()),
                },
                &mut out,
            )
            .unwrap();
            (code, String::from_utf8(out).unwrap())
        };
        for p in ["he", "she", "hers"] {
            let (code, s) = run_op(DictOp::Add { pattern: p.into() });
            assert_eq!(code, 0, "{s}");
        }
        let (code, s) = run_op(DictOp::Commit);
        assert_eq!(code, 0, "{s}");

        // Before compaction there is no sidecar: match rebuilds, says why.
        let mut out = Vec::new();
        let code = run(
            Command::Match {
                dict: DictSource::Log(log.clone()),
                text: tpath.to_string_lossy().into(),
                threads: Some(1),
                all: false,
                stream: false,
                chunk_bytes: 64 * 1024,
            },
            &mut out,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{s}");
        assert!(s.contains("rebuilt (no snapshot sidecar)"), "{s}");
        assert!(s.contains("# 3 occurrences"), "{s}");

        // Compact emits the v2 sidecar; match now cold-loads it.
        let (code, s) = run_op(DictOp::Compact);
        assert_eq!(code, 0, "{s}");
        let mut out = Vec::new();
        let code = run(
            Command::Match {
                dict: DictSource::Log(log.clone()),
                text: tpath.to_string_lossy().into(),
                threads: Some(1),
                all: false,
                stream: false,
                chunk_bytes: 64 * 1024,
            },
            &mut out,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{s}");
        assert!(s.contains("cold-loaded from"), "{s}");
        assert!(s.contains("# 3 occurrences"), "{s}");
        assert!(s.contains("2\t2\thers"), "{s}");

        // snap inspect on the emitted v2 sidecar.
        let snap_file = format!("{log}.snap");
        let mut out = Vec::new();
        let code = run(
            Command::SnapInspect {
                file: snap_file.clone(),
            },
            &mut out,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{s}");
        assert!(s.contains("PDMS v2"), "{s}");
        assert!(s.contains("patterns: 3"), "{s}");
        assert!(s.contains("section TABLES"), "{s}");
        assert!(s.contains("crc: OK"), "{s}");

        // snap inspect on the log itself (PDML).
        let mut out = Vec::new();
        let code = run(Command::SnapInspect { file: log.clone() }, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{s}");
        assert!(s.contains("PDML v1"), "{s}");
        assert!(s.contains("tail: clean"), "{s}");

        // A corrupted sidecar fails inspection and makes match fall back.
        let mut bytes = std::fs::read(&snap_file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&snap_file, &bytes).unwrap();
        let mut out = Vec::new();
        let code = run(
            Command::SnapInspect {
                file: snap_file.clone(),
            },
            &mut out,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(code, 2, "{s}");
        let mut out = Vec::new();
        let code = run(
            Command::Match {
                dict: DictSource::Log(log.clone()),
                text: tpath.to_string_lossy().into(),
                threads: Some(1),
                all: false,
                stream: false,
                chunk_bytes: 64 * 1024,
            },
            &mut out,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{s}");
        assert!(s.contains("rebuilt ("), "{s}");
        assert!(s.contains("# 3 occurrences"), "{s}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_paths_exit_2() {
        let mut out = Vec::new();
        let code = run(
            Command::Stats {
                dict: Some(DictSource::Patterns("/nonexistent/x".into())),
                addr: None,
            },
            &mut out,
        )
        .unwrap();
        assert_eq!(code, 2);
    }
}
