//! The `pdm` command-line tool. All logic lives in [`pdm::cli`] so it is
//! unit-testable; this is the thin binary wrapper.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match pdm::cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", pdm::cli::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    match pdm::cli::run(cmd, &mut stdout) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("io error: {e}");
            std::process::exit(1);
        }
    }
}
