//! # pdm — parallel dictionary matching
//!
//! A production-oriented Rust implementation of the algorithms in
//! *Highly Efficient Dictionary Matching in Parallel* (S. Muthukrishnan and
//! K. Palem, SPAA 1993), together with every substrate they rely on:
//!
//! * [`pram`] — arbitrary-CRCW PRAM execution substrate with an explicit
//!   time/work cost model;
//! * [`primitives`] — scans, compaction, nearest-one, radix sort, name
//!   tables;
//! * [`naming`] — Karp–Miller–Rosenberg naming, namestamping, prefix-naming
//!   and their dynamic variants (paper §3, §6);
//! * [`core`] — the paper's algorithms: static shrink-and-spawn dictionary
//!   matching (§4), the small-alphabet refinement (§4.4), 2-D dictionary
//!   matching (§5), dynamic dictionaries (§6), the optimal equal-length
//!   matcher (§7), and multi-dimensional single-pattern matching;
//! * [`baselines`] — Aho–Corasick, KMP, naive and Baker–Bird comparators
//!   built from scratch;
//! * [`textgen`] — workload generation for the experiment suite;
//! * [`stream`] — beyond the paper: streaming chunk-at-a-time matching
//!   ([`stream::StreamMatcher`]), a sharded multi-session service with
//!   bounded-queue backpressure ([`stream::ShardedService`]), a
//!   fault-tolerant length-prefixed TCP protocol (`pdm serve`: supervised
//!   workers, load shedding, graceful drain), and a reconnecting
//!   exactly-once client ([`stream::RetryingClient`]);
//! * [`index`] — the transposed offline workload: suffix-array corpus
//!   indexing on the same substrate (`pdm index` / `pdm query`), with
//!   interval-merged parallel batch queries and a CRC'd sidecar format.
//!
//! ## Quickstart
//!
//! ```
//! use pdm::prelude::*;
//!
//! let ctx = Ctx::par();
//! let patterns = symbolize(&["he", "she", "his", "hers"]);
//! let matcher = StaticMatcher::build(&ctx, &patterns).unwrap();
//! let text = to_symbols("ushers");
//! let out = matcher.match_text(&ctx, &text);
//! // "she" (pattern 1) is the longest pattern starting at position 1.
//! assert_eq!(out.longest_pattern[1], Some(1));
//! // "hers" (pattern 3) starts at position 2; "he" is also there but shorter.
//! assert_eq!(out.longest_pattern[2], Some(3));
//! ```

pub use pdm_baselines as baselines;
pub use pdm_core as core;
pub use pdm_index as index;
pub use pdm_naming as naming;
pub use pdm_pram as pram;
pub use pdm_primitives as primitives;
pub use pdm_stream as stream;
pub use pdm_textgen as textgen;

pub mod cli;

/// The most common imports for library users.
pub mod prelude {
    pub use pdm_core::dict::{symbolize, to_symbols, BuildError, PatId, Sym};
    pub use pdm_core::dict2d::{Dict2DMatcher, Grid2};
    pub use pdm_core::dictnd::DictNdMatcher;
    pub use pdm_core::dynamic::DynamicMatcher;
    pub use pdm_core::equal_len::EqualLenMatcher;
    pub use pdm_core::matcher::{Matcher, MatcherBuilder, MatcherKind, MatcherStats};
    pub use pdm_core::multidim::Tensor;
    pub use pdm_core::smallalpha::{BinaryEncodedMatcher, SmallAlphaMatcher};
    pub use pdm_core::static1d::{MatchOutput, StaticMatcher};
    pub use pdm_pram::{Ctx, ExecPolicy};
    pub use pdm_stream::{
        RetryConfig, RetryingClient, ServiceConfig, ShardedService, StreamMatch, StreamMatcher,
    };
}
