#!/usr/bin/env bash
# Bench regression guard for CI.
#
# Runs the matching bench in smoke mode and compares this run against the
# committed baseline JSON; the bench exits non-zero on a loss of more than
# 50% (margin chosen to absorb smoke-vs-full-size variance on a shared
# 1-CPU runner while still catching structural regressions). The bench binary is picked from the
# baseline's name: BENCH_text.json -> text_throughput (after-leg seq MB/s
# per workload, including the sparse_prefilter / dense_prefilter rows
# guarding the SWAR candidate prefilter), BENCH_index.json ->
# index_throughput (build seq MB/s and
# merged-query seq kqps), BENCH_snap.json -> snap_coldstart (sidecar
# decode MB/s), BENCH_conns.json -> conn_scale (per-leg MB/s across the
# reactor/threaded connection ladder).
#
# Usage: scripts/check_bench_regression.sh [baseline.json]
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_text.json}"
if [[ ! -f "$baseline" ]]; then
    echo "error: baseline $baseline not found" >&2
    exit 2
fi

case "$(basename "$baseline")" in
    BENCH_index*) bench=index_throughput ;;
    BENCH_snap*)  bench=snap_coldstart ;;
    BENCH_conns*) bench=conn_scale ;;
    *)            bench=text_throughput ;;
esac

PDM_BENCH_SMOKE=1 cargo run --release -p pdm-bench --bin "$bench" -- \
    "/tmp/${bench}_smoke.json" --check "$baseline"
