#!/usr/bin/env bash
# Text-throughput regression guard for CI.
#
# Runs the text_throughput bench in smoke mode and compares each
# workload's *after* sequential MB/s against the committed
# BENCH_text.json; the bench exits non-zero if any workload lost more
# than 30% (margin chosen to absorb smoke-vs-full-size variance while
# still catching structural regressions).
#
# Usage: scripts/check_bench_regression.sh [baseline.json]
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_text.json}"
if [[ ! -f "$baseline" ]]; then
    echo "error: baseline $baseline not found" >&2
    exit 2
fi

PDM_BENCH_SMOKE=1 cargo run --release -p pdm-bench --bin text_throughput -- \
    /tmp/BENCH_text_smoke.json --check "$baseline"
