#!/usr/bin/env bash
# fsck smoke for CI: corrupt a real store three ways and prove `pdm fsck`
# detects each one (exit 1) and `--repair` restores a bootable store
# (exit 0, and `pdm match --dict-log` still answers correctly).
#
# The three corruption modes:
#   1. torn log tail  — half a record appended, as a crash mid-append leaves;
#   2. corrupt sidecar — a bit flipped inside the PDMS v2 snapshot;
#   3. stray temp file — a `.tmp` stranded by an interrupted atomic write.
#
# Usage: scripts/fsck_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cargo build --release --bin pdm
bin=target/release/pdm

log="$tmp/dict.pdml"
snap="$tmp/dict.pdml.snap"
printf 'ushers' >"$tmp/text.bin"

for p in he she hers; do
    "$bin" dict add --pattern "$p" --log "$log" >/dev/null
done
"$bin" dict commit --log "$log" >/dev/null
"$bin" dict compact --log "$log" >/dev/null
test -f "$snap"

# A healthy store: exit 0, cold-load boot path reported.
"$bin" fsck --log "$log" | tee "$tmp/healthy.out"
grep -q "cold-load" "$tmp/healthy.out"

expected_matches() {
    "$bin" match --dict-log "$log" --text "$tmp/text.bin" | grep -v '^#'
}
expected_matches >"$tmp/expected.out"

# --- 1. torn log tail ---------------------------------------------------
python3 - "$log" <<'EOF'
import sys
with open(sys.argv[1], 'ab') as f:
    f.write(b'\x01\x0c\x00\x00\x00')  # half a record header
EOF
if "$bin" fsck --log "$log" >"$tmp/torn.out" 2>&1; then
    echo "fsck missed the torn tail" >&2
    exit 1
fi
grep -q "torn" "$tmp/torn.out"
"$bin" fsck --log "$log" --repair | grep -q "repaired"
"$bin" fsck --log "$log" >/dev/null # exit 0 after repair
diff "$tmp/expected.out" <(expected_matches)

# --- 2. corrupt sidecar -------------------------------------------------
python3 - "$snap" <<'EOF'
import sys
p = sys.argv[1]
b = bytearray(open(p, 'rb').read())
b[len(b) // 2] ^= 0x20
open(p, 'wb').write(b)
EOF
if "$bin" fsck --log "$log" >"$tmp/snapbad.out" 2>&1; then
    echo "fsck missed the corrupt sidecar" >&2
    exit 1
fi
grep -q "unreadable" "$tmp/snapbad.out"
"$bin" fsck --log "$log" --repair | grep -q "quarantine"
test -f "$snap.corrupt"          # quarantined, not deleted
test ! -f "$snap"
"$bin" fsck --log "$log" >"$tmp/after2.out"
grep -q "rebuild (no sidecar)" "$tmp/after2.out"
diff "$tmp/expected.out" <(expected_matches)

# Re-emit a fresh sidecar for the last scenario.
"$bin" dict compact --log "$log" >/dev/null

# --- 3. stray temp file -------------------------------------------------
printf 'half-written snapshot bytes' >"$snap.tmp"
if "$bin" fsck --log "$log" >"$tmp/stray.out" 2>&1; then
    echo "fsck missed the stray temp file" >&2
    exit 1
fi
grep -q "stray temp" "$tmp/stray.out"
"$bin" fsck --log "$log" --repair >/dev/null
test ! -f "$snap.tmp"
"$bin" fsck --log "$log" | tee "$tmp/final.out"
grep -q "bootable" "$tmp/final.out"
diff "$tmp/expected.out" <(expected_matches)

echo "fsck smoke: OK"
