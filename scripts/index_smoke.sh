#!/usr/bin/env bash
# Offline-index smoke for CI.
#
# End-to-end through the real CLI and the real on-disk format: generate a
# 1 MB log-shaped corpus plus a 1000-pattern query batch, build the PDMX
# sidecar with `pdm index`, answer the batch with `pdm query --verify` —
# which cross-checks every per-pattern count against an Aho–Corasick scan
# of the corpus and exits non-zero on any disagreement. Run under
# PDM_THREADS=2 so the pool substrate (not just sequential fallbacks)
# backs both the build and the batch query.
#
# Usage: scripts/index_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cargo build --release --bin pdm
bin=target/release/pdm

"$bin" gen --out "$tmp/corpus.bin" --bytes $((1 << 20)) --seed 7 \
    --corpus log --patterns-out "$tmp/patterns.txt" --pattern-count 1000
"$bin" index --text "$tmp/corpus.bin" --out "$tmp/corpus.pdmx"
"$bin" query --index "$tmp/corpus.pdmx" --patterns "$tmp/patterns.txt" \
    --verify >"$tmp/query.out"
tail -n 2 "$tmp/query.out"
grep -q "verify: OK" "$tmp/query.out"
echo "index smoke: OK"
