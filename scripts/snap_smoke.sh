#!/usr/bin/env bash
# Snapshot cold-boot smoke for CI.
#
# End-to-end through the real CLI and the real on-disk formats: build a
# dictionary log with `pdm dict add/commit`, `pdm dict compact` to emit
# the PDMS v2 built-matcher sidecar, then prove a fresh process boots
# from it without a rebuild — `pdm match --dict-log` must report
# "cold-loaded" and still find every occurrence. `pdm snap inspect`
# validates both sidecar and log framing, and a corrupted sidecar must
# fail inspection while `pdm match` falls back to a rebuild with
# identical output.
#
# Usage: scripts/snap_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cargo build --release --bin pdm
bin=target/release/pdm

log="$tmp/dict.pdml"
snap="$tmp/dict.pdml.snap"
printf 'ushers' >"$tmp/text.bin"

for p in he she hers; do
    "$bin" dict add --pattern "$p" --log "$log" >/dev/null
done
"$bin" dict commit --log "$log" >/dev/null

# Before compaction there is no sidecar: boot must rebuild and say why.
"$bin" match --dict-log "$log" --text "$tmp/text.bin" >"$tmp/warm.out"
grep -q "rebuilt (no snapshot sidecar)" "$tmp/warm.out"

"$bin" dict compact --log "$log" >/dev/null
test -f "$snap"

# After compaction: cold boot from the sidecar, same matches.
"$bin" match --dict-log "$log" --text "$tmp/text.bin" >"$tmp/cold.out"
grep -q "cold-loaded from" "$tmp/cold.out"
grep -q "# 3 occurrences" "$tmp/cold.out"
diff <(grep -v '^#' "$tmp/warm.out") <(grep -v '^#' "$tmp/cold.out")

# Both sidecar formats pass deep inspection.
"$bin" snap inspect --file "$snap" | tee "$tmp/inspect.out"
grep -q "PDMS v2" "$tmp/inspect.out"
grep -q "crc: OK" "$tmp/inspect.out"
"$bin" snap inspect --file "$log" | grep -q "tail: clean"

# Corruption: inspect fails loudly, match falls back to a correct rebuild.
python3 - "$snap" <<'EOF'
import sys
p = sys.argv[1]
b = bytearray(open(p, 'rb').read())
b[len(b) // 2] ^= 0x10
open(p, 'wb').write(b)
EOF
if "$bin" snap inspect --file "$snap" >/dev/null 2>&1; then
    echo "corrupt sidecar passed inspection" >&2
    exit 1
fi
"$bin" match --dict-log "$log" --text "$tmp/text.bin" >"$tmp/corrupt.out"
grep -q "rebuilt (" "$tmp/corrupt.out"
diff <(grep -v '^#' "$tmp/cold.out") <(grep -v '^#' "$tmp/corrupt.out")

echo "snap smoke: OK"
